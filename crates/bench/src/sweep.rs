//! The (dataset × method × k) sweep shared by the Fig. 8–11 binaries.

use crate::experiment::{anonymize, build_dataset, utility_errors, AnyMethod, ExperimentConfig};
use chameleon_datasets::DatasetKind;

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Dataset the cell belongs to.
    pub dataset: DatasetKind,
    /// Method evaluated.
    pub method: AnyMethod,
    /// Obfuscation level.
    pub k: usize,
    /// The measured utility errors, or the failure message.
    pub outcome: Result<crate::experiment::UtilityErrors, String>,
}

/// Runs the full sweep; progress lines go to stderr so stdout stays a clean
/// table.
pub fn run_sweep(
    cfg: &ExperimentConfig,
    methods: &[AnyMethod],
    datasets: &[DatasetKind],
) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &dataset in datasets {
        let graph = build_dataset(dataset, cfg);
        eprintln!(
            "[sweep] {dataset}: n={}, m={}, mean_p={:.3}",
            graph.num_nodes(),
            graph.num_edges(),
            graph.mean_edge_prob()
        );
        for &k in &cfg.k_values {
            for &method in methods {
                eprint!("[sweep]   k={k} {method} ... ");
                let outcome = anonymize(&graph, method, k, cfg)
                    .map(|published| utility_errors(&graph, &published, cfg));
                match &outcome {
                    Ok(e) => eprintln!(
                        "rel={:.4} deg={:.4} dist={:.4} cc={:.4}",
                        e.reliability, e.avg_degree, e.avg_distance, e.clustering
                    ),
                    Err(msg) => eprintln!("FAILED ({msg})"),
                }
                rows.push(SweepRow {
                    dataset,
                    method,
                    k,
                    outcome,
                });
            }
        }
    }
    rows
}

/// Formats one error metric from a sweep row (`--` for failed cells).
pub fn format_metric(
    row: &SweepRow,
    pick: impl Fn(&crate::experiment::UtilityErrors) -> f64,
) -> String {
    match &row.outcome {
        Ok(e) => format!("{:.4}", pick(e)),
        Err(_) => "--".to_string(),
    }
}

/// Prints a per-figure table (one metric) and writes its CSV.
pub fn emit_figure(
    title: &str,
    csv_name: &str,
    rows: &[SweepRow],
    pick: impl Fn(&crate::experiment::UtilityErrors) -> f64 + Copy,
) {
    println!("== {title} ==");
    let mut table = crate::table::TablePrinter::new(["dataset", "k", "method", "error"]);
    for row in rows {
        table.row([
            row.dataset.name().to_string(),
            row.k.to_string(),
            row.method.name().to_string(),
            format_metric(row, pick),
        ]);
    }
    print!("{}", table.render());
    let path = crate::table::results_dir().join(csv_name);
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    println!();
}
