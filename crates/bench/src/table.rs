//! Table printing and CSV output for the experiment binaries.

use std::io::Write;
use std::path::Path;

/// Aligned-column table printer for terminal output.
#[derive(Debug, Clone)]
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a table with the given column names.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV.
    ///
    /// # Errors
    /// I/O errors from file creation/writing.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let header = self.header.iter().map(String::as_str).collect::<Vec<_>>();
        let rows: Vec<Vec<String>> = self.rows.clone();
        write_csv(path, &header, &rows)
    }
}

/// Writes a CSV file (quotes cells containing commas/quotes).
///
/// # Errors
/// I/O errors from file creation/writing.
pub fn write_csv<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(dir) = path.as_ref().parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(
        file,
        "{}",
        header
            .iter()
            .map(|c| quote(c))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            file,
            "{}",
            row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

/// Default results directory (overridable via `CHAMELEON_RESULTS_DIR`).
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("CHAMELEON_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TablePrinter::new(["dataset", "k", "error"]);
        t.row(["DBLP", "100", "0.05"]);
        t.row(["BRIGHTKITE", "200", "0.150"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("dataset"));
        assert!(lines[2].starts_with("DBLP"));
        // Columns align: "k" column starts at same offset in all rows.
        let pos = lines[0].find("k").unwrap();
        assert_eq!(&lines[2][pos..pos + 3], "100");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TablePrinter::new(["a", "b"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_roundtrip_content() {
        let dir = std::env::temp_dir().join("chameleon-table-test");
        let path = dir.join("out.csv");
        let mut t = TablePrinter::new(["name", "value"]);
        t.row(["plain", "1"]);
        t.row(["with,comma", "2"]);
        t.row(["with\"quote", "3"]);
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("name,value\n"));
        assert!(text.contains("\"with,comma\",2"));
        assert!(text.contains("\"with\"\"quote\",3"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn results_dir_env_override() {
        // Serialized via a unique env var name is unnecessary — just check
        // the default path when unset.
        if std::env::var_os("CHAMELEON_RESULTS_DIR").is_none() {
            assert_eq!(results_dir(), std::path::PathBuf::from("results"));
        }
    }
}
