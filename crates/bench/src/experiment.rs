//! Shared experiment machinery: dataset construction, method dispatch
//! (Chameleon variants + Rep-An), and utility-error evaluation.

use chameleon_baseline::RepAn;
use chameleon_core::{Chameleon, ChameleonConfig, Method};
use chameleon_datasets::DatasetKind;
use chameleon_reliability::metrics::clustering::expected_clustering;
use chameleon_reliability::metrics::distance::expected_distances;
use chameleon_reliability::metrics::relative_error;
use chameleon_reliability::{avg_reliability_discrepancy, sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::UncertainGraph;

/// All methods compared in the evaluation (paper Table II order plus the
/// baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyMethod {
    /// Chameleon RSME (full method).
    Rsme,
    /// Chameleon RS.
    Rs,
    /// Chameleon ME.
    Me,
    /// Rep-An baseline.
    RepAn,
}

impl AnyMethod {
    /// All four, in reporting order.
    pub const ALL: [AnyMethod; 4] = [
        AnyMethod::Rsme,
        AnyMethod::Rs,
        AnyMethod::Me,
        AnyMethod::RepAn,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyMethod::Rsme => "RSME",
            AnyMethod::Rs => "RS",
            AnyMethod::Me => "ME",
            AnyMethod::RepAn => "Rep-An",
        }
    }
}

impl std::fmt::Display for AnyMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment-wide configuration, filled from CLI flags.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Node count of each synthetic dataset.
    pub scale: usize,
    /// Master seed.
    pub seed: u64,
    /// Worlds per reliability ensemble (discrepancy estimation and ERR).
    pub worlds: usize,
    /// Sampled node pairs for reliability discrepancy.
    pub pairs: usize,
    /// Worlds for the expensive structural metrics (distance, clustering).
    pub metric_worlds: usize,
    /// BFS sources per world for distance metrics.
    pub bfs_sources: usize,
    /// Obfuscation levels k to sweep.
    pub k_values: Vec<usize>,
    /// Tolerance ε (fraction of skippable vertices).
    pub epsilon: f64,
    /// GenObf trials per σ.
    pub trials: usize,
    /// Worker threads for the Monte-Carlo hot paths (`0` = all cores).
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: 800,
            seed: 42,
            worlds: 500,
            pairs: 2000,
            metric_worlds: 50,
            bfs_sources: 25,
            k_values: vec![40, 80, 100],
            epsilon: 0.05,
            trials: 5,
            threads: 0,
        }
    }
}

impl ExperimentConfig {
    /// Builds the config from parsed CLI arguments.
    pub fn from_args(args: &crate::args::Args) -> Self {
        let d = Self::default();
        let scale = args.get("scale", d.scale);
        // Default k sweep tracks scale: {5%, 10%, 12.5%} of n. (The paper
        // uses k in [100, 300] at |V| in the tens of thousands to
        // hundreds of thousands; at reproduction scale the synthetic
        // graphs' degree uncertainty already hides everyone below ~2.5%
        // of n — see the `probe` binary — so the sweep sits where the
        // anonymizer has real work to do.)
        let default_ks: Vec<usize> = [0.05, 0.10, 0.125]
            .iter()
            .map(|f| ((scale as f64 * f).round() as usize).max(2))
            .collect();
        Self {
            scale,
            seed: args.get("seed", d.seed),
            worlds: args.get("worlds", d.worlds),
            pairs: args.get("pairs", d.pairs),
            metric_worlds: args.get("metric-worlds", d.metric_worlds),
            bfs_sources: args.get("bfs-sources", d.bfs_sources),
            k_values: args.get_list("k", default_ks),
            epsilon: args.get("epsilon", d.epsilon),
            trials: args.get("trials", d.trials),
            threads: args.get("threads", d.threads),
        }
    }

    /// The anonymizer configuration for obfuscation level `k`.
    pub fn chameleon_config(&self, k: usize) -> ChameleonConfig {
        ChameleonConfig::builder()
            .k(k)
            .epsilon(self.epsilon)
            .trials(self.trials)
            .num_world_samples(self.worlds)
            .sigma_tolerance(0.05)
            .num_threads(self.threads)
            .build()
    }
}

/// Builds the synthetic stand-in for `kind` at the configured scale.
pub fn build_dataset(kind: DatasetKind, cfg: &ExperimentConfig) -> UncertainGraph {
    let seed = SeedSequence::new(cfg.seed).derive(kind.name());
    chameleon_datasets::generate(&kind.scaled_spec(cfg.scale), seed)
}

/// Runs one anonymization; returns the published graph.
///
/// # Errors
/// Returns a human-readable message when the method cannot achieve
/// (k, ε)-obfuscation on this graph.
pub fn anonymize(
    graph: &UncertainGraph,
    method: AnyMethod,
    k: usize,
    cfg: &ExperimentConfig,
) -> Result<UncertainGraph, String> {
    let config = cfg.chameleon_config(k);
    let seed = SeedSequence::new(cfg.seed).derive_indexed(method.name(), k as u64);
    match method {
        AnyMethod::Rsme => Chameleon::new(config)
            .anonymize(graph, Method::Rsme, seed)
            .map(|r| r.graph)
            .map_err(|e| e.to_string()),
        AnyMethod::Rs => Chameleon::new(config)
            .anonymize(graph, Method::Rs, seed)
            .map(|r| r.graph)
            .map_err(|e| e.to_string()),
        AnyMethod::Me => Chameleon::new(config)
            .anonymize(graph, Method::Me, seed)
            .map(|r| r.graph)
            .map_err(|e| e.to_string()),
        AnyMethod::RepAn => RepAn::new(config)
            .anonymize(graph, seed)
            .map(|r| r.graph)
            .map_err(|e| e.to_string()),
    }
}

/// Utility-loss measurements between an original and a published graph —
/// one value per evaluation figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityErrors {
    /// Fig. 8 / Fig. 4: average per-pair reliability discrepancy.
    pub reliability: f64,
    /// Fig. 9: relative error of the expected average degree.
    pub avg_degree: f64,
    /// Fig. 10: relative error of the expected average distance.
    pub avg_distance: f64,
    /// Fig. 11: relative error of the expected clustering coefficient.
    pub clustering: f64,
}

/// Evaluates all four utility metrics (paper §VI-A: 1000-sample Monte
/// Carlo; world and pair counts come from `cfg`).
pub fn utility_errors(
    original: &UncertainGraph,
    published: &UncertainGraph,
    cfg: &ExperimentConfig,
) -> UtilityErrors {
    let seq = SeedSequence::new(cfg.seed);

    // Reliability discrepancy over sampled pairs, with common random
    // numbers: Chameleon outputs extend the original edge array in place,
    // so shared uniforms cancel the independent-sampling noise (for
    // Rep-An's re-indexed edges CRN degrades gracefully to independent
    // sampling — each stream is still i.i.d. uniform).
    let pairs = sample_distinct_pairs(
        original.num_nodes(),
        cfg.pairs,
        &mut seq.rng("pair-sampling"),
    );
    let uniforms = chameleon_reliability::crn_uniform_matrix(
        cfg.worlds,
        original.num_edges().max(published.num_edges()),
        &mut seq.rng("crn"),
    );
    let ens_orig = WorldEnsemble::from_uniform_matrix(original, &uniforms);
    let ens_pub = WorldEnsemble::from_uniform_matrix(published, &uniforms);
    let reliability = avg_reliability_discrepancy(&ens_orig, &ens_pub, &pairs).avg;

    // Average degree (closed form).
    let avg_degree = relative_error(
        original.expected_average_degree(),
        published.expected_average_degree(),
    );

    // Distance metrics on smaller ensembles.
    let m_orig = WorldEnsemble::sample(original, cfg.metric_worlds, &mut seq.rng("m-orig"));
    let m_pub = WorldEnsemble::sample(published, cfg.metric_worlds, &mut seq.rng("m-pub"));
    let d_orig = expected_distances(
        original,
        &m_orig,
        cfg.bfs_sources,
        &mut seq.rng("bfs-sources"),
    );
    let d_pub = expected_distances(
        published,
        &m_pub,
        cfg.bfs_sources,
        &mut seq.rng("bfs-sources"),
    );
    let avg_distance = relative_error(d_orig.avg_distance, d_pub.avg_distance);

    // Clustering coefficient.
    let c_orig = expected_clustering(original, &m_orig);
    let c_pub = expected_clustering(published, &m_pub);
    let clustering = relative_error(c_orig.clustering_coefficient, c_pub.clustering_coefficient);

    UtilityErrors {
        reliability,
        avg_degree,
        avg_distance,
        clustering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        ExperimentConfig {
            scale: 120,
            seed: 1,
            worlds: 80,
            pairs: 200,
            metric_worlds: 10,
            bfs_sources: 8,
            k_values: vec![3],
            epsilon: 0.1,
            trials: 2,
            threads: 1,
        }
    }

    #[test]
    fn datasets_build_at_scale() {
        let cfg = tiny_config();
        for kind in DatasetKind::ALL {
            let g = build_dataset(kind, &cfg);
            assert_eq!(g.num_nodes(), 120);
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn identical_graphs_have_zero_errors() {
        let cfg = tiny_config();
        let g = build_dataset(DatasetKind::Brightkite, &cfg);
        let e = utility_errors(&g, &g.clone(), &cfg);
        assert_eq!(e.avg_degree, 0.0);
        // Monte-Carlo metrics use independent ensembles; allow noise.
        assert!(e.reliability < 0.1, "reliability={}", e.reliability);
        assert!(e.avg_distance < 0.25, "distance={}", e.avg_distance);
    }

    #[test]
    fn all_methods_run_end_to_end() {
        let cfg = tiny_config();
        let g = build_dataset(DatasetKind::Brightkite, &cfg);
        for method in AnyMethod::ALL {
            let out = anonymize(&g, method, 3, &cfg);
            let published = out.unwrap_or_else(|e| panic!("{method} failed: {e}"));
            assert_eq!(published.num_nodes(), g.num_nodes());
            let errors = utility_errors(&g, &published, &cfg);
            assert!(errors.reliability.is_finite());
            assert!(errors.avg_degree.is_finite());
        }
    }

    #[test]
    fn config_from_args_defaults_scale_k() {
        let args = crate::args::Args::parse(["--scale", "400"].iter().map(|s| s.to_string()));
        let cfg = ExperimentConfig::from_args(&args);
        assert_eq!(cfg.scale, 400);
        assert_eq!(cfg.k_values, vec![20, 40, 50]);
    }

    #[test]
    fn config_from_args_explicit_k() {
        let args = crate::args::Args::parse(["--k", "7,9"].iter().map(|s| s.to_string()));
        let cfg = ExperimentConfig::from_args(&args);
        assert_eq!(cfg.k_values, vec![7, 9]);
    }

    #[test]
    fn method_names() {
        assert_eq!(AnyMethod::RepAn.name(), "Rep-An");
        assert_eq!(format!("{}", AnyMethod::Rsme), "RSME");
        assert_eq!(AnyMethod::ALL.len(), 4);
    }
}
