//! Figure 4: structural distortion (average reliability discrepancy) of
//! Rep-An across privacy levels, with the Chameleon (RSME) lower bound and
//! the contribution of the representative-extraction step alone.
//!
//! The paper sweeps k ∈ {100, 150, 200, 250, 300} on the full datasets; the
//! reproduction defaults to five k values between 5% and 15% of |V| (where
//! raw exposure is non-trivial at synthetic scale; see the `probe`
//! binary), overridable with `--k`.
//!
//! Usage: `fig4 [--scale N] [--seed S] [--worlds W] [--pairs P] [--k a,b,..]`

use chameleon_baseline::{extract_representative, RepresentativeStrategy};
use chameleon_bench::{anonymize, build_dataset, AnyMethod, Args, ExperimentConfig, TablePrinter};
use chameleon_datasets::DatasetKind;
use chameleon_reliability::{avg_reliability_discrepancy, sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::UncertainGraph;

fn reliability_error(
    original: &UncertainGraph,
    published: &UncertainGraph,
    cfg: &ExperimentConfig,
) -> f64 {
    let seq = SeedSequence::new(cfg.seed);
    let pairs = sample_distinct_pairs(original.num_nodes(), cfg.pairs, &mut seq.rng("fig4-pairs"));
    let uniforms = chameleon_reliability::crn_uniform_matrix(
        cfg.worlds,
        original.num_edges().max(published.num_edges()),
        &mut seq.rng("fig4-crn"),
    );
    let a = WorldEnsemble::from_uniform_matrix(original, &uniforms);
    let b = WorldEnsemble::from_uniform_matrix(published, &uniforms);
    avg_reliability_discrepancy(&a, &b, &pairs).avg
}

fn main() {
    let args = Args::from_env();
    let mut cfg = ExperimentConfig::from_args(&args);
    if !args.has("k") {
        // Five k values matching the paper's sweep granularity.
        cfg.k_values = [0.05, 0.075, 0.10, 0.125, 0.15]
            .iter()
            .map(|f| ((cfg.scale as f64 * f).round() as usize).max(2))
            .collect();
    }

    println!("== Fig 4 — avg reliability discrepancy: Rep-An vs Chameleon lower bound ==");
    let mut table = TablePrinter::new(["dataset", "k", "series", "avg_reliability_discrepancy"]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);
        eprintln!("[fig4] {kind}: n={}, m={}", g.num_nodes(), g.num_edges());
        // Representative-extraction-only distortion (k-independent): the
        // paper attributes much of Rep-An's error to this stage alone.
        let rep = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
        let rep_err = reliability_error(&g, &rep, &cfg);
        for &k in &cfg.k_values {
            table.row([
                kind.name().to_string(),
                k.to_string(),
                "Rep-only".to_string(),
                format!("{rep_err:.4}"),
            ]);
            for method in [AnyMethod::RepAn, AnyMethod::Rsme] {
                let series = match method {
                    AnyMethod::RepAn => "Rep-An",
                    _ => "Chameleon(LB)",
                };
                eprint!("[fig4]   k={k} {series} ... ");
                match anonymize(&g, method, k, &cfg) {
                    Ok(published) => {
                        let err = reliability_error(&g, &published, &cfg);
                        eprintln!("{err:.4}");
                        table.row([
                            kind.name().to_string(),
                            k.to_string(),
                            series.to_string(),
                            format!("{err:.4}"),
                        ]);
                    }
                    Err(msg) => {
                        eprintln!("FAILED ({msg})");
                        table.row([
                            kind.name().to_string(),
                            k.to_string(),
                            series.to_string(),
                            "--".to_string(),
                        ]);
                    }
                }
            }
        }
    }
    print!("{}", table.render());
    let path = chameleon_bench::table::results_dir().join("fig4.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
