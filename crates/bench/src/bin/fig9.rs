//! Figure 9: ability of the four methods to preserve **average node
//! degree** (relative error of the expected average degree).
//!
//! Usage: `fig9 [--scale N] [--seed S] [--k a,b,c]`

use chameleon_bench::{emit_figure, run_sweep, AnyMethod, Args, ExperimentConfig};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let rows = run_sweep(&cfg, &AnyMethod::ALL, &DatasetKind::ALL);
    emit_figure(
        "Fig 9 — average node degree preservation (relative error)",
        "fig9.csv",
        &rows,
        |e| e.avg_degree,
    );
}
