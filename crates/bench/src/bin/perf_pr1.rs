//! Perf snapshot for the deterministic-parallelism PR: times the three
//! Monte-Carlo hot paths (world sampling + per-world analysis, the ERR
//! estimator, and the anonymity check) at 1 thread and at all hardware
//! threads on a fixed synthetic graph, and writes the numbers to
//! `BENCH_PR1.json` so later PRs can track the perf trajectory.
//!
//! Timing runs through `chameleon_obs` spans — the same instrumentation
//! the pipeline itself records with — so there is exactly one timing
//! implementation in the workspace. Each site is wrapped in a dedicated
//! span and the reported figure is the fastest rep (`min_ns` of the span),
//! which is the most repeatable statistic on a noisy CI host.
//!
//! The same chunked algorithms run at every thread count, so the two
//! configurations produce bit-identical results — this binary asserts
//! that before reporting timings.
//!
//! Usage: `perf_pr1 [--scale N] [--worlds W] [--reps R] [--out PATH]`

use chameleon_bench::{Args, ExperimentConfig};
use chameleon_core::AdversaryKnowledge;
use chameleon_core::{anonymity_check_threads, edge_reliability_relevance_threads};
use chameleon_datasets::DatasetKind;
use chameleon_obs::site::{SpanGuard, SpanSite};
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::parallel;
use std::fmt::Write as _;

static SPAN_SAMPLING_SERIAL: SpanSite = SpanSite::new("perf.world_sampling.serial");
static SPAN_SAMPLING_PARALLEL: SpanSite = SpanSite::new("perf.world_sampling.parallel");
static SPAN_ERR_SERIAL: SpanSite = SpanSite::new("perf.edge_reliability_relevance.serial");
static SPAN_ERR_PARALLEL: SpanSite = SpanSite::new("perf.edge_reliability_relevance.parallel");
static SPAN_CHECK_SERIAL: SpanSite = SpanSite::new("perf.anonymity_check.serial");
static SPAN_CHECK_PARALLEL: SpanSite = SpanSite::new("perf.anonymity_check.parallel");

/// Runs `f` `reps` times inside `site` and returns the fastest rep in
/// seconds (the span keeps the full distribution for the JSON report).
fn time_reps<F: FnMut()>(site: &'static SpanSite, reps: usize, mut f: F) -> f64 {
    for _ in 0..reps.max(1) {
        let _g = SpanGuard::enter(site);
        f();
    }
    chameleon_obs::snapshot()
        .span(site.name())
        .map(|s| s.min_s())
        .unwrap_or(0.0)
}

struct Site {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

impl Site {
    fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            f64::INFINITY
        }
    }
}

fn main() {
    assert!(
        chameleon_obs::is_enabled(),
        "perf_pr1 times via obs spans; rebuild with the default `obs` feature"
    );
    let args = Args::from_env();
    let mut cfg = ExperimentConfig::from_args(&args);
    cfg.scale = args.get("scale", 800usize);
    cfg.worlds = args.get("worlds", 500usize);
    let reps: usize = args.get("reps", 3usize);
    let out: String = args.get("out", "BENCH_PR1.json".to_string());

    let all_threads = parallel::available_threads();
    let g = chameleon_bench::build_dataset(DatasetKind::Brightkite, &cfg);
    let knowledge = AdversaryKnowledge::expected_degrees(&g);
    let k = (cfg.scale / 10).max(2);
    println!(
        "== perf_pr1: n={} m={} worlds={} threads=1 vs {} (reps={}) ==",
        g.num_nodes(),
        g.num_edges(),
        cfg.worlds,
        all_threads,
        reps
    );

    // Determinism spot-check before timing anything: both thread counts
    // must produce bit-identical outputs.
    let ens_1 = WorldEnsemble::sample_seeded(&g, cfg.worlds, cfg.seed, 1);
    let ens_p = WorldEnsemble::sample_seeded(&g, cfg.worlds, cfg.seed, all_threads);
    let err_1 = edge_reliability_relevance_threads(&g, &ens_1, 1);
    let err_p = edge_reliability_relevance_threads(&g, &ens_p, all_threads);
    assert_eq!(err_1, err_p, "parallel ERR diverged from serial");
    let chk_1 = anonymity_check_threads(&g, &knowledge, k, 1);
    let chk_p = anonymity_check_threads(&g, &knowledge, k, all_threads);
    assert_eq!(
        chk_1.eps_hat.to_bits(),
        chk_p.eps_hat.to_bits(),
        "parallel anonymity check diverged from serial"
    );
    drop(ens_p);

    // Drop the warm-up contributions so the perf spans and the embedded
    // pipeline metrics cover only the timed region.
    chameleon_obs::reset();

    let sampling = Site {
        name: "world_sampling",
        serial_s: time_reps(&SPAN_SAMPLING_SERIAL, reps, || {
            let e = WorldEnsemble::sample_seeded(&g, cfg.worlds, cfg.seed, 1);
            assert_eq!(e.len(), cfg.worlds);
        }),
        parallel_s: time_reps(&SPAN_SAMPLING_PARALLEL, reps, || {
            let e = WorldEnsemble::sample_seeded(&g, cfg.worlds, cfg.seed, all_threads);
            assert_eq!(e.len(), cfg.worlds);
        }),
    };
    let err = Site {
        name: "edge_reliability_relevance",
        serial_s: time_reps(&SPAN_ERR_SERIAL, reps, || {
            let e = edge_reliability_relevance_threads(&g, &ens_1, 1);
            assert_eq!(e.len(), g.num_edges());
        }),
        parallel_s: time_reps(&SPAN_ERR_PARALLEL, reps, || {
            let e = edge_reliability_relevance_threads(&g, &ens_1, all_threads);
            assert_eq!(e.len(), g.num_edges());
        }),
    };
    let check = Site {
        name: "anonymity_check",
        serial_s: time_reps(&SPAN_CHECK_SERIAL, reps, || {
            let r = anonymity_check_threads(&g, &knowledge, k, 1);
            assert!(r.eps_hat.is_finite());
        }),
        parallel_s: time_reps(&SPAN_CHECK_PARALLEL, reps, || {
            let r = anonymity_check_threads(&g, &knowledge, k, all_threads);
            assert!(r.eps_hat.is_finite());
        }),
    };

    let worlds_per_sec_serial = cfg.worlds as f64 / sampling.serial_s;
    let worlds_per_sec_parallel = cfg.worlds as f64 / sampling.parallel_s;
    for site in [&sampling, &err, &check] {
        println!(
            "{:<28} serial {:.4}s  parallel({} threads) {:.4}s  speedup {:.2}x",
            site.name,
            site.serial_s,
            all_threads,
            site.parallel_s,
            site.speedup()
        );
    }
    println!(
        "world sampling throughput: {worlds_per_sec_serial:.1} worlds/s (1 thread), \
         {worlds_per_sec_parallel:.1} worlds/s ({all_threads} threads)"
    );

    // Hand-rolled JSON — the workspace carries no serialization dependency.
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"PR1 deterministic parallel hot path\","
    );
    let _ = writeln!(json, "  \"timer\": \"obs span, min of reps\",");
    let _ = writeln!(json, "  \"hardware_threads\": {all_threads},");
    let _ = writeln!(json, "  \"scale\": {},", cfg.scale);
    let _ = writeln!(json, "  \"edges\": {},", g.num_edges());
    let _ = writeln!(json, "  \"worlds\": {},", cfg.worlds);
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(
        json,
        "  \"worlds_sampled_per_sec\": {{ \"serial\": {worlds_per_sec_serial:.2}, \"parallel\": {worlds_per_sec_parallel:.2} }},"
    );
    for site in [&sampling, &err, &check] {
        let _ = writeln!(
            json,
            "  \"{}\": {{ \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"threads\": {}, \"speedup\": {:.3} }},",
            site.name,
            site.serial_s,
            site.parallel_s,
            all_threads,
            site.speedup(),
        );
    }
    // Full registry snapshot: the perf.* spans plus everything the
    // pipeline recorded underneath them (chunk timings, counters, ...).
    let _ = writeln!(
        json,
        "  \"metrics\": {}",
        indent_json(&chameleon_obs::metrics_json())
    );
    json.push_str("}\n");

    match std::fs::write(&out, &json) {
        Ok(()) => println!("(json written to {out})"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }
    if all_threads < 4 {
        println!(
            "note: only {all_threads} hardware thread(s) available — speedups at this core \
             count do not reflect the parallel layer's headroom"
        );
    }
}

/// Re-indents a JSON document for embedding as a nested object value.
fn indent_json(doc: &str) -> String {
    doc.trim_end().replace('\n', "\n  ")
}
