//! Developer diagnostic: dissect a single (dataset, method, k, sigma)
//! GenObf-style perturbation — who stays exposed and why.
//!
//! Usage: `diag [--scale N] [--dataset PPI] [--k K] [--sigma S] [--method RSME]`

use chameleon_bench::{build_dataset, Args, ExperimentConfig};
use chameleon_core::anonymity::{anonymity_check, AdversaryKnowledge};
use chameleon_core::candidate::{select_candidates, VertexSampler};
use chameleon_core::perturb::draw_noise;
use chameleon_core::relevance::{
    edge_reliability_relevance, min_max_normalize, vertex_reliability_relevance,
};
use chameleon_core::uniqueness::uniqueness_scores;
use chameleon_core::Method;
use chameleon_datasets::DatasetKind;
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::SeedSequence;
use std::collections::HashSet;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let dataset = match args
        .get("dataset", "PPI".to_string())
        .to_uppercase()
        .as_str()
    {
        "DBLP" => DatasetKind::Dblp,
        "BRIGHTKITE" => DatasetKind::Brightkite,
        _ => DatasetKind::Ppi,
    };
    let k: usize = args.get("k", 20);
    let sigma: f64 = args.get("sigma", 4.0);
    let method: Method = args.get("method", "RSME".to_string()).parse().unwrap();

    let g = build_dataset(dataset, &cfg);
    let seq = SeedSequence::new(cfg.seed);
    let knowledge = AdversaryKnowledge::expected_degrees(&g);

    let uniq = uniqueness_scores(&g);
    let vrr = if method.reliability_oriented() {
        let ens = WorldEnsemble::sample(&g, 200, &mut seq.rng("ens"));
        let err = edge_reliability_relevance(&g, &ens);
        vertex_reliability_relevance(&g, &err)
    } else {
        vec![0.0; g.num_nodes()]
    };
    let vrr_norm = min_max_normalize(&vrr);
    let selection: Vec<f64> = if method.reliability_oriented() {
        uniq.iter()
            .zip(&vrr_norm)
            .map(|(u, r)| u * (1.0 - r))
            .collect()
    } else {
        uniq.clone()
    };
    // Exclusion H.
    let n = g.num_nodes();
    let h_size = ((cfg.epsilon / 2.0) * n as f64).ceil() as usize;
    let excl_score: Vec<f64> = if method.reliability_oriented() {
        uniq.iter().zip(&vrr).map(|(u, r)| u * r).collect()
    } else {
        uniq.clone()
    };
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| excl_score[b].partial_cmp(&excl_score[a]).unwrap());
    let excluded: HashSet<u32> = order[..h_size.min(n - 2)]
        .iter()
        .map(|&v| v as u32)
        .collect();

    let raw = anonymity_check(&g, &knowledge, k);
    println!(
        "{dataset} n={n} m={} | k={k} sigma={sigma} method={method} | raw exposed: {}",
        g.num_edges(),
        raw.unobfuscated.len()
    );

    // One perturbation trial at this sigma.
    let sampler = VertexSampler::new(&selection, &excluded);
    let mut rng = seq.rng("trial");
    let cands = select_candidates(&g, &sampler, 2.0, &mut rng);
    let q_edge: Vec<f64> = cands
        .iter()
        .map(|c| 0.5 * (selection[c.u as usize] + selection[c.v as usize]))
        .collect();
    let q_mean = q_edge.iter().sum::<f64>() / cands.len() as f64;
    let mut pert = g.clone();
    for (c, &qe) in cands.iter().zip(&q_edge) {
        let sigma_e = (sigma * qe / q_mean).clamp(1e-9, 3.0);
        let r = draw_noise(sigma_e, 0.01, &mut rng);
        let p_new = method.perturbation().apply(c.p, r, &mut rng);
        match c.existing {
            Some(e) => pert.set_prob(e, p_new).unwrap(),
            None => {
                pert.add_edge(c.u, c.v, p_new).unwrap();
            }
        }
    }
    let rep = anonymity_check(&pert, &knowledge, k);
    println!(
        "after perturbation: exposed {} (candidates: {}, injected: {})",
        rep.unobfuscated.len(),
        cands.len(),
        cands.iter().filter(|c| c.existing.is_none()).count()
    );
    println!("\nexposed nodes (top 25 by expected degree):");
    let mut exposed: Vec<u32> = rep.unobfuscated.clone();
    exposed.sort_by(|&a, &b| {
        g.expected_degree(b)
            .partial_cmp(&g.expected_degree(a))
            .unwrap()
    });
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "node", "E[deg]", "omega", "H(bits)", "uniq", "vrr_norm", "sel_w", "in_H"
    );
    for &v in exposed.iter().take(25) {
        let omega = knowledge.target(v);
        println!(
            "{:>6} {:>8.2} {:>8} {:>8.3} {:>10.3e} {:>10.3} {:>10.3e} {:>6}",
            v,
            g.expected_degree(v),
            omega,
            rep.entropy_by_omega[&omega],
            uniq[v as usize],
            vrr_norm[v as usize],
            selection[v as usize],
            excluded.contains(&v)
        );
    }
    // Class-size context.
    let mut class_sizes = std::collections::HashMap::new();
    for v in 0..n as u32 {
        *class_sizes.entry(knowledge.target(v)).or_insert(0usize) += 1;
    }
    let mut exposed_omegas: Vec<u32> = rep
        .unobfuscated
        .iter()
        .map(|&v| knowledge.target(v))
        .collect();
    exposed_omegas.sort_unstable();
    exposed_omegas.dedup();
    println!("\nexposed omega classes: {} distinct", exposed_omegas.len());
    for &w in exposed_omegas.iter().take(20) {
        println!(
            "  omega {w:>4}: class size {:>4}, H = {:.3} bits (need {:.3})",
            class_sizes[&w],
            rep.entropy_by_omega[&w],
            (k as f64).log2()
        );
    }
}
