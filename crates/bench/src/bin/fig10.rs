//! Figure 10: ability of the four methods to preserve **average distance**
//! (relative error of the expected per-world mean shortest-path length).
//!
//! Usage: `fig10 [--scale N] [--seed S] [--metric-worlds W] [--bfs-sources B] [--k a,b,c]`

use chameleon_bench::{emit_figure, run_sweep, AnyMethod, Args, ExperimentConfig};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let rows = run_sweep(&cfg, &AnyMethod::ALL, &DatasetKind::ALL);
    emit_figure(
        "Fig 10 — average distance preservation (relative error)",
        "fig10.csv",
        &rows,
        |e| e.avg_distance,
    );
}
