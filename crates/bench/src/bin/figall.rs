//! Runs the full Fig. 8–11 sweep once and emits all four figures (the
//! anonymizations are shared, so this is 4× cheaper than running fig8,
//! fig9, fig10, fig11 separately).
//!
//! Usage: `figall [--scale N] [--seed S] [--worlds W] [--pairs P] [--k a,b,c]`

use chameleon_bench::{emit_figure, run_sweep, AnyMethod, Args, ExperimentConfig};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    eprintln!("[figall] config: {cfg:?}");
    let rows = run_sweep(&cfg, &AnyMethod::ALL, &DatasetKind::ALL);
    emit_figure(
        "Fig 8 — reliability preservation (avg reliability discrepancy)",
        "fig8.csv",
        &rows,
        |e| e.reliability,
    );
    emit_figure(
        "Fig 9 — average node degree preservation (relative error)",
        "fig9.csv",
        &rows,
        |e| e.avg_degree,
    );
    emit_figure(
        "Fig 10 — average distance preservation (relative error)",
        "fig10.csv",
        &rows,
        |e| e.avg_distance,
    );
    emit_figure(
        "Fig 11 — clustering coefficient preservation (relative error)",
        "fig11.csv",
        &rows,
        |e| e.clustering,
    );
}
