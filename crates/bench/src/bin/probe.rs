//! Diagnostic: raw (pre-anonymization) exposure of each dataset across a
//! range of k — how many vertices a degree-informed adversary can single
//! out in a *naive* release. Used to choose meaningful k sweeps for the
//! figure experiments (k where raw exposure is non-trivial).
//!
//! Usage: `probe [--scale N] [--seed S] [--k a,b,c,...]`

use chameleon_bench::{build_dataset, Args, ExperimentConfig, TablePrinter};
use chameleon_core::{anonymity_check, AdversaryKnowledge};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let default_ks: Vec<usize> = [2, 5, 10, 20, 40, 80, 160]
        .into_iter()
        .filter(|&k| k < cfg.scale)
        .collect();
    let ks = args.get_list("k", default_ks);

    let mut table = TablePrinter::new(["dataset", "k", "exposed", "fraction"]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        for &k in &ks {
            let rep = anonymity_check(&g, &knowledge, k);
            table.row([
                kind.name().to_string(),
                k.to_string(),
                rep.unobfuscated.len().to_string(),
                format!("{:.4}", rep.eps_hat),
            ]);
        }
    }
    print!("{}", table.render());
}
