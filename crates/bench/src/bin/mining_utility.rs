//! Task-level utility experiment (beyond the paper's tables): run the
//! mining tasks the paper motivates — reliable kNN (ref [30]), reliable
//! clusters (refs [4],[38]), influence maximization (ref [20]) — on the
//! original and on each method's published graph, and report answer
//! agreement. This quantifies the end-to-end claim that Chameleon releases
//! stay *usable* for research while Rep-An releases do not.
//!
//! Usage: `mining_utility [--scale N] [--seed S] [--k K] [--worlds W]`

use chameleon_bench::{anonymize, build_dataset, AnyMethod, Args, ExperimentConfig, TablePrinter};
use chameleon_datasets::DatasetKind;
use chameleon_mining::{
    cluster_agreement, greedy_seed_selection, rank_overlap_at_k, reliability_knn, reliable_clusters,
};
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::{SeedSequence, Summary};
use chameleon_ugraph::{NodeId, UncertainGraph};

struct TaskAnswers {
    knn_by_source: Vec<Vec<NodeId>>,
    clusters: Vec<Vec<NodeId>>,
    seeds: Vec<NodeId>,
}

fn run_tasks(graph: &UncertainGraph, sources: &[NodeId], worlds: usize, seed: u64) -> TaskAnswers {
    let mut rng = SeedSequence::new(seed).rng("mining-ensemble");
    let ens = WorldEnsemble::sample(graph, worlds, &mut rng);
    let knn_by_source = sources
        .iter()
        .map(|&s| {
            reliability_knn(&ens, s, 10)
                .into_iter()
                .map(|nb| nb.node)
                .collect()
        })
        .collect();
    let clusters = reliable_clusters(graph, &ens, 0.5, 3).clusters;
    let seeds = greedy_seed_selection(&ens, 5)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    TaskAnswers {
        knn_by_source,
        clusters,
        seeds,
    }
}

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let k: usize = args.get("k", (cfg.scale / 10).max(2));
    let worlds = cfg.worlds.min(400);

    println!(
        "== mining-task utility at ({k}, {})-obfuscation ==",
        cfg.epsilon
    );
    let mut table = TablePrinter::new([
        "dataset",
        "method",
        "knn overlap@10",
        "cluster agreement",
        "seed overlap@5",
    ]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);
        let seq = SeedSequence::new(cfg.seed);
        let sources: Vec<NodeId> = (0..20.min(g.num_nodes()) as u32)
            .map(|i| (i * (g.num_nodes() as u32 / 20)).min(g.num_nodes() as u32 - 1))
            .collect();
        let reference = run_tasks(&g, &sources, worlds, seq.derive("tasks-orig"));
        for method in AnyMethod::ALL {
            eprint!("[mining] {kind} {method} ... ");
            match anonymize(&g, method, k, &cfg) {
                Ok(published) => {
                    let answers = run_tasks(&published, &sources, worlds, seq.derive("tasks-pub"));
                    let mut knn = Summary::new();
                    for (a, b) in reference.knn_by_source.iter().zip(&answers.knn_by_source) {
                        knn.push(rank_overlap_at_k(a, b, 10));
                    }
                    let clusters = cluster_agreement(&reference.clusters, &answers.clusters);
                    let seeds = rank_overlap_at_k(&reference.seeds, &answers.seeds, 5);
                    eprintln!(
                        "knn={:.3} clusters={:.3} seeds={:.3}",
                        knn.mean(),
                        clusters,
                        seeds
                    );
                    table.row([
                        kind.name().to_string(),
                        method.name().to_string(),
                        format!("{:.3}", knn.mean()),
                        format!("{clusters:.3}"),
                        format!("{seeds:.3}"),
                    ]);
                }
                Err(e) => {
                    eprintln!("FAILED ({e})");
                    table.row([
                        kind.name().to_string(),
                        method.name().to_string(),
                        "--".into(),
                        "--".into(),
                        "--".into(),
                    ]);
                }
            }
        }
    }
    print!("{}", table.render());
    let path = chameleon_bench::table::results_dir().join("mining_utility.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
