//! Population-scale efficiency sweep (DESIGN.md §12): out-of-core
//! ensemble analysis at n = 10⁴ … 10⁶ nodes.
//!
//! For each scale, generates a BRIGHTKITE-like synthetic graph
//! (`chameleon_datasets::synth`) and runs the strip-streamed ensemble
//! pipeline — compressed world sampling, expected connected pairs,
//! blocked pair reliability, and the coupled ERR estimator — recording
//! wall time, peak *tracked* ensemble bytes (the `alloc_guard` gauge the
//! `--max-ensemble-bytes` ceiling enforces), and the delta+RLE
//! compression ratio into a JSON artifact (`BENCH_PR9.json`).
//!
//! With `--verify`, the same statistics are first computed through the
//! dense in-RAM path (with the ceiling lifted — the reference must be
//! allowed to exceed it) and every streamed output is compared
//! bit-for-bit. With `--max-ensemble-bytes`, the streamed pass runs
//! under a hard ceiling; a budget error or a gauge peak above the
//! ceiling is a failure. The CI `scale-smoke` job runs
//! `scaling --scales 100000 --verify --max-ensemble-bytes …` and relies
//! on the non-zero exit for both failure modes.
//!
//! Usage: `scaling [--scales 10000,100000,1000000] [--worlds 256]
//!         [--strip-worlds 64] [--seed 42] [--threads 0]
//!         [--max-ensemble-bytes 0] [--verify] [--out BENCH_PR9.json]`

use chameleon_bench::Args;
use chameleon_core::relevance::{
    edge_reliability_relevance_streamed, edge_reliability_relevance_threads,
};
use chameleon_datasets::synth;
use chameleon_reliability::{sample_distinct_pairs, EnsembleStream, WorldEnsemble};
use chameleon_stats::{alloc_guard, SeedSequence};
use std::fmt::Write as _;
use std::time::Instant;

/// Pairs for the blocked reliability statistic: few enough to stay
/// off the critical path, spread across the vertex range.
const SWEEP_PAIRS: usize = 64;

/// One scale's measurements; `dense_*` are present only under `--verify`.
struct Row {
    n: usize,
    m: usize,
    gen_s: f64,
    streamed_s: f64,
    streamed_peak_bytes: usize,
    compressed_bytes: usize,
    compression_ratio: f64,
    dense_s: Option<f64>,
    dense_peak_bytes: Option<usize>,
    verified: bool,
}

/// The dense reference statistics compared bit-for-bit against the
/// streamed pass.
struct Reference {
    ecp: f64,
    rels: Vec<f64>,
    err: Vec<f64>,
}

fn main() {
    let args = Args::from_env();
    let scales: Vec<usize> = args.get_list("scales", vec![10_000, 100_000, 1_000_000]);
    let worlds: usize = args.get("worlds", 256usize);
    let strip: usize = args.get("strip-worlds", 64usize);
    let seed: u64 = args.get("seed", 42u64);
    let ceiling: usize = args.get("max-ensemble-bytes", 0usize);
    let verify = args.has("verify");
    let out: String = args.get("out", "BENCH_PR9.json".to_string());
    let threads: usize = match args.get("threads", 0usize) {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };

    println!(
        "== out-of-core scale sweep: worlds={worlds} strip={strip} threads={threads} \
         ceiling={ceiling} verify={verify} =="
    );

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &n in &scales {
        let seq = SeedSequence::new(seed);
        let ens_seed = seq.derive("scale-ensemble");
        let t = Instant::now();
        let g = synth::brightkite_like(n, seed);
        let gen_s = t.elapsed().as_secs_f64();
        let m = g.num_edges();
        let mut pair_rng = seq.rng("scale-pairs");
        let pairs = sample_distinct_pairs(n, SWEEP_PAIRS.min(n * (n - 1) / 2), &mut pair_rng);

        // Dense reference pass: the ceiling is lifted (the whole point of
        // the streamed mode is that the dense arenas may not fit it) and
        // restored before the measured streamed pass.
        let mut dense_s = None;
        let mut dense_peak_bytes = None;
        let reference = if verify {
            alloc_guard::set_ensemble_limit(0);
            alloc_guard::reset_ensemble_peak();
            let t = Instant::now();
            let ens = WorldEnsemble::sample_seeded(&g, worlds, ens_seed, threads);
            let r = Reference {
                ecp: ens.expected_connected_pairs(),
                rels: ens.reliability_many(&pairs),
                err: edge_reliability_relevance_threads(&g, &ens, threads),
            };
            dense_s = Some(t.elapsed().as_secs_f64());
            dense_peak_bytes = Some(alloc_guard::ensemble_peak_bytes());
            Some(r)
        } else {
            None
        };

        // Streamed pass, under the configured ceiling.
        alloc_guard::set_ensemble_limit(ceiling);
        alloc_guard::reset_ensemble_peak();
        let t = Instant::now();
        let streamed =
            (|| -> Result<(EnsembleStream<'_>, Reference), alloc_guard::BudgetExceeded> {
                let stream = EnsembleStream::sample(&g, worlds, ens_seed, threads, strip)?;
                let r = Reference {
                    ecp: stream.expected_connected_pairs()?,
                    rels: stream.reliability_many(&pairs)?,
                    err: edge_reliability_relevance_streamed(&g, &stream, threads)?,
                };
                Ok((stream, r))
            })();
        let streamed_s = t.elapsed().as_secs_f64();
        let streamed_peak_bytes = alloc_guard::ensemble_peak_bytes();
        alloc_guard::set_ensemble_limit(0);

        let (stream, got) = match streamed {
            Ok(pair) => pair,
            Err(e) => {
                failures.push(format!("n={n}: streamed pass hit the ceiling: {e}"));
                continue;
            }
        };
        if ceiling > 0 && streamed_peak_bytes > ceiling {
            failures.push(format!(
                "n={n}: tracked ensemble peak {streamed_peak_bytes} bytes breached the \
                 {ceiling}-byte ceiling"
            ));
        }
        let mut verified = false;
        if let Some(want) = &reference {
            let mismatch = want.ecp.to_bits() != got.ecp.to_bits()
                || want.rels.len() != got.rels.len()
                || want.err.len() != got.err.len()
                || want
                    .rels
                    .iter()
                    .zip(&got.rels)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
                || want
                    .err
                    .iter()
                    .zip(&got.err)
                    .any(|(a, b)| a.to_bits() != b.to_bits());
            if mismatch {
                failures.push(format!(
                    "n={n}: streamed outputs are not bit-identical to the in-RAM path"
                ));
            } else {
                verified = true;
            }
        }

        let row = Row {
            n,
            m,
            gen_s,
            streamed_s,
            streamed_peak_bytes,
            compressed_bytes: stream.compressed_bytes(),
            compression_ratio: stream.compression_ratio(),
            dense_s,
            dense_peak_bytes,
            verified,
        };
        println!(
            "n={n} m={m}: gen {gen_s:.2}s, streamed {streamed_s:.2}s \
             (peak {streamed_peak_bytes} B, store {} B, ratio {:.3}){}{}",
            row.compressed_bytes,
            row.compression_ratio,
            match (dense_s, dense_peak_bytes) {
                (Some(s), Some(p)) => format!(", dense {s:.2}s (peak {p} B)"),
                _ => String::new(),
            },
            if verified { ", bit-identical" } else { "" },
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"pr9 out-of-core scale sweep\",");
    let _ = writeln!(json, "  \"dataset\": \"brightkite_like\",");
    let _ = writeln!(json, "  \"seed\": {seed},");
    let _ = writeln!(json, "  \"worlds\": {worlds},");
    let _ = writeln!(json, "  \"strip_worlds\": {strip},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"max_ensemble_bytes\": {ceiling},");
    let _ = writeln!(json, "  \"failures\": {},", failures.len());
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let opt_f = |v: Option<f64>| v.map_or("null".to_string(), |x| format!("{x:.4}"));
        let opt_u = |v: Option<usize>| v.map_or("null".to_string(), |x| x.to_string());
        let sep = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{ \"n\": {}, \"m\": {}, \"gen_s\": {:.4}, \"streamed_s\": {:.4}, \
             \"streamed_peak_bytes\": {}, \"compressed_bytes\": {}, \
             \"compression_ratio\": {:.4}, \"dense_s\": {}, \"dense_peak_bytes\": {}, \
             \"verified\": {} }}{sep}",
            r.n,
            r.m,
            r.gen_s,
            r.streamed_s,
            r.streamed_peak_bytes,
            r.compressed_bytes,
            r.compression_ratio,
            opt_f(r.dense_s),
            opt_u(r.dense_peak_bytes),
            r.verified,
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(json written to {out})"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("scale sweep FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!("scale sweep passed");
}
