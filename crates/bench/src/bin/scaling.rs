//! Efficiency experiment: wall-clock anonymization time vs graph scale
//! (the paper's abstract promises an effectiveness *and efficiency*
//! evaluation; this is the efficiency half at reproduction scale).
//!
//! For each scale, reports time for the one-time invariants (uniqueness +
//! ERR/VRR over N sampled worlds) and for the full σ-search anonymization,
//! per method.
//!
//! Usage: `scaling [--scales 200,400,800,1600] [--seed S] [--worlds W]`

use chameleon_bench::{anonymize, AnyMethod, Args, ExperimentConfig, TablePrinter};
use chameleon_core::relevance::{edge_reliability_relevance, vertex_reliability_relevance};
use chameleon_core::uniqueness::uniqueness_scores;
use chameleon_datasets::DatasetKind;
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::SeedSequence;
use std::time::Instant;

fn main() {
    let args = Args::from_env();
    let base = ExperimentConfig::from_args(&args);
    let scales: Vec<usize> = args.get_list("scales", vec![200, 400, 800, 1600]);

    println!("== efficiency: anonymization wall-clock vs scale (BRIGHTKITE-like) ==");
    let mut table = TablePrinter::new([
        "n",
        "m",
        "invariants (s)",
        "RSME (s)",
        "ME (s)",
        "Rep-An (s)",
    ]);
    for &scale in &scales {
        let mut cfg = base.clone();
        cfg.scale = scale;
        cfg.k_values = vec![(scale / 10).max(2)];
        let k = cfg.k_values[0];
        let g = chameleon_bench::build_dataset(DatasetKind::Brightkite, &cfg);
        let seq = SeedSequence::new(cfg.seed);

        let t0 = Instant::now();
        let _u = uniqueness_scores(&g);
        let mut rng = seq.rng("scaling-ens");
        let ens = WorldEnsemble::sample(&g, cfg.worlds, &mut rng);
        let err = edge_reliability_relevance(&g, &ens);
        let _vrr = vertex_reliability_relevance(&g, &err);
        let invariants = t0.elapsed().as_secs_f64();

        let time_method = |method: AnyMethod| -> String {
            let t = Instant::now();
            match anonymize(&g, method, k, &cfg) {
                Ok(_) => format!("{:.2}", t.elapsed().as_secs_f64()),
                Err(_) => format!("{:.2} (fail)", t.elapsed().as_secs_f64()),
            }
        };
        let rsme = time_method(AnyMethod::Rsme);
        let me = time_method(AnyMethod::Me);
        let repan = time_method(AnyMethod::RepAn);
        eprintln!("[scaling] n={scale}: invariants {invariants:.2}s, RSME {rsme}s");
        table.row([
            scale.to_string(),
            g.num_edges().to_string(),
            format!("{invariants:.2}"),
            rsme,
            me,
            repan,
        ]);
    }
    print!("{}", table.render());
    let path = chameleon_bench::table::results_dir().join("scaling.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
