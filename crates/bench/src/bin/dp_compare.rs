//! Syntactic vs differential privacy (the paper's Related-Work claim):
//! compare Chameleon RSME against the ε-DP dK-1 synthetic publisher on
//! correspondence-free aggregate metrics.
//!
//! DP releases have no node correspondence, so per-pair reliability is
//! undefined for them; we compare what *can* be compared: expected
//! connected pairs (the aggregate behind reliability), average degree,
//! average distance, clustering coefficient, and degree-distribution
//! distances (total variation / earth mover's).
//!
//! Usage: `dp_compare [--scale N] [--seed S] [--k K] [--dp-eps 0.1,1,10]`

use chameleon_bench::{anonymize, build_dataset, AnyMethod, Args, ExperimentConfig, TablePrinter};
use chameleon_datasets::DatasetKind;
use chameleon_dp::DpPublisher;
use chameleon_reliability::metrics::clustering::expected_clustering;
use chameleon_reliability::metrics::distance::expected_distances;
use chameleon_reliability::metrics::distribution::degree_distribution_distances;
use chameleon_reliability::metrics::relative_error;
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::SeedSequence;
use chameleon_ugraph::UncertainGraph;

struct AggregateErrors {
    connected_pairs: f64,
    avg_degree: f64,
    avg_distance: f64,
    clustering: f64,
    degree_tv: f64,
    degree_emd: f64,
}

fn aggregate_errors(
    original: &UncertainGraph,
    published: &UncertainGraph,
    cfg: &ExperimentConfig,
) -> AggregateErrors {
    let seq = SeedSequence::new(cfg.seed);
    let a = WorldEnsemble::sample(original, cfg.metric_worlds, &mut seq.rng("agg-a"));
    let b = WorldEnsemble::sample(published, cfg.metric_worlds, &mut seq.rng("agg-b"));
    let cp = relative_error(a.expected_connected_pairs(), b.expected_connected_pairs());
    let deg = relative_error(
        original.expected_average_degree(),
        published.expected_average_degree(),
    );
    let da = expected_distances(original, &a, cfg.bfs_sources, &mut seq.rng("agg-src"));
    let db = expected_distances(published, &b, cfg.bfs_sources, &mut seq.rng("agg-src"));
    let dist = relative_error(da.avg_distance, db.avg_distance);
    let ca = expected_clustering(original, &a);
    let cb = expected_clustering(published, &b);
    let cc = relative_error(ca.clustering_coefficient, cb.clustering_coefficient);
    let dd = degree_distribution_distances(original, &a, published, &b);
    AggregateErrors {
        connected_pairs: cp,
        avg_degree: deg,
        avg_distance: dist,
        clustering: cc,
        degree_tv: dd.total_variation,
        degree_emd: dd.earth_movers,
    }
}

fn main() {
    let args = Args::from_env();
    let mut cfg = ExperimentConfig::from_args(&args);
    if !args.has("metric-worlds") {
        cfg.metric_worlds = 40;
    }
    let k: usize = args.get("k", (cfg.scale / 10).max(2));
    let dp_eps: Vec<f64> = args.get_list("dp-eps", vec![0.1, 1.0, 10.0]);

    println!("== syntactic (Chameleon RSME, k={k}) vs differential privacy (dK-1) ==");
    let mut table = TablePrinter::new([
        "dataset",
        "publisher",
        "E[cc] err",
        "deg err",
        "dist err",
        "cc err",
        "deg TV",
        "deg EMD",
    ]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);
        let mut emit = |label: String, published: &UncertainGraph| {
            let e = aggregate_errors(&g, published, &cfg);
            eprintln!(
                "[dp] {kind} {label}: cp={:.3} deg={:.3} dist={:.3} cc={:.3} tv={:.3}",
                e.connected_pairs, e.avg_degree, e.avg_distance, e.clustering, e.degree_tv
            );
            table.row([
                kind.name().to_string(),
                label,
                format!("{:.4}", e.connected_pairs),
                format!("{:.4}", e.avg_degree),
                format!("{:.4}", e.avg_distance),
                format!("{:.4}", e.clustering),
                format!("{:.4}", e.degree_tv),
                format!("{:.3}", e.degree_emd),
            ]);
        };
        match anonymize(&g, AnyMethod::Rsme, k, &cfg) {
            Ok(published) => emit("Chameleon".into(), &published),
            Err(e) => eprintln!("[dp] {kind} Chameleon FAILED ({e})"),
        }
        for &eps in &dp_eps {
            let publisher = DpPublisher::new(eps);
            let release = publisher.publish(&g, SeedSequence::new(cfg.seed).derive("dp"));
            emit(format!("DP eps={eps}"), &release);
        }
    }
    print!("{}", table.render());
    let path = chameleon_bench::table::results_dir().join("dp_compare.csv");
    match table.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
