//! Figure 3: edge-probability distributions and degree distributions of
//! "unique" nodes for the three datasets.
//!
//! Prints ASCII histograms of the edge probabilities (Fig. 3(a)) and the
//! complementary CDF of node degrees restricted to nodes whose degree-based
//! anonymity set is small (Fig. 3(b): "degree distributions of 'unique'
//! nodes ... obfuscation level smaller than 300" — at reproduction scale
//! the threshold scales to `obf_threshold ≈ 0.375·scale·0.01` nodes, i.e.
//! the same fraction of |V|; override with `--obf-threshold`).
//!
//! Usage: `fig3 [--scale N] [--seed S] [--bins B] [--obf-threshold T]`

use chameleon_bench::{build_dataset, Args, ExperimentConfig, TablePrinter};
use chameleon_datasets::DatasetKind;
use chameleon_stats::histogram::IntHistogram;
use chameleon_stats::Histogram;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let bins: usize = args.get("bins", 10);
    // Paper threshold 300 at PPI scale 12420 ≈ 2.4% of |V|.
    let default_threshold = ((cfg.scale as f64) * 0.024).ceil() as usize;
    let obf_threshold: usize = args.get("obf-threshold", default_threshold.max(2));

    let mut csv = TablePrinter::new(["dataset", "bin_lo", "bin_hi", "fraction"]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);

        // ---- Fig. 3(a): edge-probability histogram.
        println!("== Fig 3(a) — edge probability distribution: {kind} ==");
        let mut hist = Histogram::new(0.0, 1.0, bins);
        for e in g.edges() {
            hist.push(e.p);
        }
        print!("{}", hist.render_ascii(40));
        let edges_vec = hist.edges();
        for (i, frac) in hist.fractions().iter().enumerate() {
            csv.row([
                kind.name().to_string(),
                format!("{:.3}", edges_vec[i]),
                format!("{:.3}", edges_vec[i + 1]),
                format!("{frac:.5}"),
            ]);
        }

        // ---- Fig. 3(b): degree CCDF of "unique" nodes.
        // A node is unique when few other nodes share (approximately) its
        // expected degree — its anonymity set is below the threshold.
        let expected = g.expected_degrees();
        let rounded: Vec<u64> = expected.iter().map(|d| d.round() as u64).collect();
        let mut counts = std::collections::HashMap::new();
        for &d in &rounded {
            *counts.entry(d).or_insert(0usize) += 1;
        }
        let mut unique_hist = IntHistogram::new();
        let mut n_unique = 0usize;
        for &d in &rounded {
            if counts[&d] < obf_threshold {
                unique_hist.push(d);
                n_unique += 1;
            }
        }
        println!(
            "== Fig 3(b) — degree CCDF of unique nodes (anonymity set < {obf_threshold}): \
             {kind} — {n_unique}/{} unique ==",
            g.num_nodes()
        );
        for (deg, ccdf) in unique_hist.ccdf() {
            println!("  deg >= {deg:<6} fraction {ccdf:.4}");
        }
        println!();
    }
    let path = chameleon_bench::table::results_dir().join("fig3_prob_hist.csv");
    match csv.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
