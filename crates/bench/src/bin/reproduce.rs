//! One-command reproduction: runs every experiment binary in sequence
//! with shared flags and writes all outputs under `results/`.
//!
//! Usage: `reproduce [--scale N] [--seed S] [--quick]`
//! (`--quick` shrinks scale/worlds for a fast smoke reproduction)

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut forwarded: Vec<String> = args.iter().filter(|a| *a != "--quick").cloned().collect();
    if quick {
        for flag in [
            "--scale",
            "300",
            "--worlds",
            "150",
            "--pairs",
            "500",
            "--metric-worlds",
            "10",
            "--trials",
            "3",
        ] {
            forwarded.push(flag.to_string());
        }
    }
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    std::fs::create_dir_all("results").ok();
    let experiments = [
        "table1",
        "fig3",
        "fig4",
        "figall",
        "ablation",
        "mining_utility",
        "dp_compare",
        "scaling",
    ];
    let mut failures = Vec::new();
    for exp in experiments {
        println!("=== running {exp} ===");
        let out_path = format!("results/{exp}.out");
        let output = Command::new(exe_dir.join(exp))
            .args(&forwarded)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {exp}: {e}"));
        std::fs::write(&out_path, &output.stdout).expect("write results");
        if !output.status.success() {
            eprintln!("{exp} FAILED:\n{}", String::from_utf8_lossy(&output.stderr));
            failures.push(exp);
        } else {
            println!("  -> {out_path}");
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed; outputs in results/");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
