//! Figure 11: ability of the four methods to preserve the **clustering
//! coefficient** (relative error of the expected global clustering
//! coefficient).
//!
//! Usage: `fig11 [--scale N] [--seed S] [--metric-worlds W] [--k a,b,c]`

use chameleon_bench::{emit_figure, run_sweep, AnyMethod, Args, ExperimentConfig};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let rows = run_sweep(&cfg, &AnyMethod::ALL, &DatasetKind::ALL);
    emit_figure(
        "Fig 11 — clustering coefficient preservation (relative error)",
        "fig11.csv",
        &rows,
        |e| e.clustering,
    );
}
