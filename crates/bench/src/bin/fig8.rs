//! Figure 8: ability of the four methods to preserve **reliability**
//! (average per-pair reliability discrepancy vs the original), across the
//! three datasets and the k sweep.
//!
//! Usage: `fig8 [--scale N] [--seed S] [--worlds W] [--pairs P] [--k a,b,c]`

use chameleon_bench::{emit_figure, run_sweep, AnyMethod, Args, ExperimentConfig};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);
    let rows = run_sweep(&cfg, &AnyMethod::ALL, &DatasetKind::ALL);
    emit_figure(
        "Fig 8 — reliability preservation (avg reliability discrepancy)",
        "fig8.csv",
        &rows,
        |e| e.reliability,
    );
}
