//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! * `perturb` — max-entropy vs unguided perturbation at equal noise:
//!   degree-entropy gain (the Lemma 6 / Fig. 7 rationale) and achieved σ*
//!   when used inside the full pipeline.
//! * `bandwidth` — uniqueness-bandwidth θ = s·σ_G for s ∈ {0.25, 1, 4}.
//! * `candidates` — candidate-set multiplier c ∈ {1.0, 1.5, 2.0, 3.0}.
//! * `whitenoise` — white-noise level q ∈ {0, 0.01, 0.1, 0.5}.
//! * `errsamples` — ERR estimator convergence: rank correlation of the
//!   reused-sampling estimate at N worlds vs a 4000-world reference.
//!
//! Usage: `ablation [study ...] [--scale N] [--seed S] [--k K]`
//! (no positional study = run all).

use chameleon_bench::{build_dataset, utility_errors, Args, ExperimentConfig, TablePrinter};
use chameleon_core::relevance::{edge_reliability_relevance, edge_reliability_relevance_alg2};
use chameleon_core::{Chameleon, ChameleonConfig, Method, PerturbStrategy};
use chameleon_datasets::DatasetKind;
use chameleon_reliability::WorldEnsemble;
use chameleon_stats::{PoissonBinomial, SeedSequence};
use rand::Rng;

fn base_config(cfg: &ExperimentConfig, k: usize) -> ChameleonConfig {
    ChameleonConfig::builder()
        .k(k)
        .epsilon(cfg.epsilon)
        .trials(cfg.trials)
        .num_world_samples(cfg.worlds)
        .sigma_tolerance(0.05)
        .build()
}

/// Entropy gain of one perturbation strategy on a synthetic vertex with
/// `deg` incident edges at probability `p0`, noise magnitude budget `r`.
fn entropy_gain(strategy: PerturbStrategy, deg: usize, p0: f64, r: f64, seed: u64) -> f64 {
    let mut rng = SeedSequence::new(seed).rng("entropy-gain");
    let reps = 300;
    let base = PoissonBinomial::new(&vec![p0; deg]).entropy_nats();
    let mut total = 0.0;
    for _ in 0..reps {
        let perturbed: Vec<f64> = (0..deg)
            .map(|_| strategy.apply(p0, r * rng.gen::<f64>(), &mut rng))
            .collect();
        total += PoissonBinomial::new(&perturbed).entropy_nats();
    }
    total / reps as f64 - base
}

fn study_perturb(cfg: &ExperimentConfig) {
    println!("== ablation: perturbation rule (Lemma 6 / Fig. 7 rationale) ==");
    let mut t = TablePrinter::new(["p0", "deg", "budget r", "dH max-entropy", "dH unguided"]);
    for &p0 in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        for &r in &[0.1, 0.3] {
            let me = entropy_gain(PerturbStrategy::MaxEntropy, 12, p0, r, cfg.seed);
            let un = entropy_gain(PerturbStrategy::Unguided, 12, p0, r, cfg.seed);
            t.row([
                format!("{p0:.1}"),
                "12".to_string(),
                format!("{r:.1}"),
                format!("{me:+.4}"),
                format!("{un:+.4}"),
            ]);
        }
    }
    print!("{}", t.render());
    let _ = t.write_csv(chameleon_bench::table::results_dir().join("ablation_perturb.csv"));
    println!();
}

fn run_variant(
    label: &str,
    graph: &chameleon_ugraph::UncertainGraph,
    original: &chameleon_ugraph::UncertainGraph,
    config: ChameleonConfig,
    cfg: &ExperimentConfig,
    table: &mut TablePrinter,
) {
    match Chameleon::new(config).anonymize(graph, Method::Rsme, cfg.seed) {
        Ok(result) => {
            let errors = utility_errors(original, &result.graph, cfg);
            table.row([
                label.to_string(),
                format!("{:.3e}", result.sigma),
                format!("{:.4}", result.eps_hat),
                format!("{:.4}", errors.reliability),
                format!("{:.4}", errors.avg_degree),
            ]);
        }
        Err(e) => {
            table.row([
                label.to_string(),
                "--".into(),
                "--".into(),
                "--".into(),
                format!("FAILED: {e}"),
            ]);
        }
    }
}

fn study_bandwidth(cfg: &ExperimentConfig, k: usize) {
    println!("== ablation: uniqueness bandwidth θ = s·σ_G ==");
    let g = build_dataset(DatasetKind::Brightkite, cfg);
    let mut t = TablePrinter::new(["s", "sigma*", "eps-hat", "rel-err", "deg-err"]);
    for &s in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut config = base_config(cfg, k);
        config.bandwidth_scale = s;
        run_variant(&format!("{s:.2}"), &g, &g, config, cfg, &mut t);
    }
    print!("{}", t.render());
    let _ = t.write_csv(chameleon_bench::table::results_dir().join("ablation_bandwidth.csv"));
    println!();
}

fn study_candidates(cfg: &ExperimentConfig, k: usize) {
    println!("== ablation: candidate-set multiplier c ==");
    let g = build_dataset(DatasetKind::Brightkite, cfg);
    let mut t = TablePrinter::new(["c", "sigma*", "eps-hat", "rel-err", "deg-err"]);
    for &c in &[1.0, 1.5, 2.0, 3.0] {
        let mut config = base_config(cfg, k);
        config.size_multiplier = c;
        run_variant(&format!("{c:.1}"), &g, &g, config, cfg, &mut t);
    }
    print!("{}", t.render());
    let _ = t.write_csv(chameleon_bench::table::results_dir().join("ablation_candidates.csv"));
    println!();
}

fn study_whitenoise(cfg: &ExperimentConfig, k: usize) {
    println!("== ablation: white-noise level q ==");
    let g = build_dataset(DatasetKind::Brightkite, cfg);
    let mut t = TablePrinter::new(["q", "sigma*", "eps-hat", "rel-err", "deg-err"]);
    for &q in &[0.0, 0.01, 0.1, 0.5] {
        let mut config = base_config(cfg, k);
        config.white_noise = q;
        run_variant(&format!("{q:.2}"), &g, &g, config, cfg, &mut t);
    }
    print!("{}", t.render());
    let _ = t.write_csv(chameleon_bench::table::results_dir().join("ablation_whitenoise.csv"));
    println!();
}

/// Spearman rank correlation between two equal-length score vectors.
fn spearman(a: &[f64], b: &[f64]) -> f64 {
    fn ranks(xs: &[f64]) -> Vec<f64> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&i, &j| xs[i].partial_cmp(&xs[j]).unwrap());
        let mut r = vec![0.0; xs.len()];
        for (rank, &i) in order.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    }
    let (ra, rb) = (ranks(a), ranks(b));
    let n = a.len() as f64;
    let mean = (n - 1.0) / 2.0;
    let mut num = 0.0;
    let mut da = 0.0;
    let mut db = 0.0;
    for (x, y) in ra.iter().zip(&rb) {
        num += (x - mean) * (y - mean);
        da += (x - mean) * (x - mean);
        db += (y - mean) * (y - mean);
    }
    if da == 0.0 || db == 0.0 {
        0.0
    } else {
        num / (da * db).sqrt()
    }
}

fn study_errsamples(cfg: &ExperimentConfig) {
    println!("== ablation: ERR estimator convergence (N worlds) ==");
    let g = build_dataset(DatasetKind::Brightkite, cfg);
    let seq = SeedSequence::new(cfg.seed);
    let reference = {
        let mut rng = seq.rng("err-reference");
        let ens = WorldEnsemble::sample(&g, 4000, &mut rng);
        edge_reliability_relevance(&g, &ens)
    };
    let mut t = TablePrinter::new([
        "N",
        "coupled spearman",
        "coupled MAD",
        "alg2 spearman",
        "alg2 MAD",
    ]);
    for &n in &[25usize, 50, 100, 250, 500, 1000] {
        let mut rng = seq.rng_indexed("err-sample", n as u64);
        let ens = WorldEnsemble::sample(&g, n, &mut rng);
        let coupled = edge_reliability_relevance(&g, &ens);
        let alg2 = edge_reliability_relevance_alg2(&g, &ens);
        let mad = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&reference)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / est.len().max(1) as f64
        };
        t.row([
            n.to_string(),
            format!("{:.4}", spearman(&coupled, &reference)),
            format!("{:.4}", mad(&coupled)),
            format!("{:.4}", spearman(&alg2, &reference)),
            format!("{:.4}", mad(&alg2)),
        ]);
    }
    print!("{}", t.render());
    let _ = t.write_csv(chameleon_bench::table::results_dir().join("ablation_errsamples.csv"));
    println!();
}

fn main() {
    let args = Args::from_env();
    let mut cfg = ExperimentConfig::from_args(&args);
    // Ablations run on one dataset at a moderate size by default.
    if !args.has("scale") {
        cfg.scale = 500;
    }
    if !args.has("worlds") {
        cfg.worlds = 300;
    }
    if !args.has("epsilon") {
        // Tight tolerance so the k used below leaves real work (see probe).
        cfg.epsilon = 0.01;
    }
    let k: usize = args.get("k", (cfg.scale / 5).max(2));
    let studies: Vec<String> = if args.positional().is_empty() {
        vec![
            "perturb".into(),
            "bandwidth".into(),
            "candidates".into(),
            "whitenoise".into(),
            "errsamples".into(),
        ]
    } else {
        args.positional().to_vec()
    };
    for study in &studies {
        match study.as_str() {
            "perturb" => study_perturb(&cfg),
            "bandwidth" => study_bandwidth(&cfg, k),
            "candidates" => study_candidates(&cfg, k),
            "whitenoise" => study_whitenoise(&cfg, k),
            "errsamples" => study_errsamples(&cfg),
            other => eprintln!(
                "unknown study {other:?} (perturb|bandwidth|candidates|whitenoise|errsamples)"
            ),
        }
    }
}
