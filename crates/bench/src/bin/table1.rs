//! Table I: characteristics of the datasets and privacy parameters.
//!
//! Prints the paper-scale values alongside the scaled synthetic stand-ins
//! actually generated for the reproduction.
//!
//! Usage: `table1 [--scale N] [--seed S]`

use chameleon_bench::{build_dataset, Args, ExperimentConfig, TablePrinter};
use chameleon_datasets::DatasetKind;

fn main() {
    let args = Args::from_env();
    let cfg = ExperimentConfig::from_args(&args);

    println!("== Table I: dataset characteristics ==\n");
    println!("-- Paper scale (reference) --");
    let mut paper = TablePrinter::new(["Graph", "Nodes", "Edges", "Edge Prob", "Tolerance"]);
    for kind in DatasetKind::ALL {
        let s = kind.paper_spec();
        paper.row([
            s.kind.name().to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.2}", s.mean_edge_prob),
            format!("{:.0e}", s.tolerance),
        ]);
    }
    print!("{}", paper.render());

    println!(
        "\n-- Reproduction scale (synthetic stand-ins, scale={}) --",
        cfg.scale
    );
    let mut scaled = TablePrinter::new([
        "Graph",
        "Nodes",
        "Edges",
        "Edge Prob",
        "Mean Degree",
        "Max Degree",
        "Tolerance(cfg)",
    ]);
    for kind in DatasetKind::ALL {
        let g = build_dataset(kind, &cfg);
        let max_deg = (0..g.num_nodes() as u32)
            .map(|v| g.degree(v))
            .max()
            .unwrap_or(0);
        scaled.row([
            kind.name().to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            format!("{:.3}", g.mean_edge_prob()),
            format!("{:.2}", g.expected_average_degree()),
            max_deg.to_string(),
            format!("{:.3}", cfg.epsilon),
        ]);
    }
    print!("{}", scaled.render());
    let path = chameleon_bench::table::results_dir().join("table1.csv");
    match scaled.write_csv(&path) {
        Ok(()) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
