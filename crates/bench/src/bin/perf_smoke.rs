//! CI perf-smoke gate: runs the tier-1 Monte-Carlo hot paths at a fixed
//! small size, times them through `chameleon_obs` spans, and fails (exit 1)
//! when any hot path regresses more than `--tolerance` (default 25%)
//! against the committed baseline `ci/perf_baseline.json`.
//!
//! Raw wall-clock is useless as a cross-machine gate, so every measurement
//! is normalized by a calibration score: the time a fixed xorshift
//! arithmetic loop takes on the same host, measured through the same span
//! machinery. The baseline stores `site_seconds / calibration_seconds`
//! ratios — dimensionless work units that transfer across CPU generations
//! far better than seconds do.
//!
//! Usage:
//!   perf_smoke [--out BENCH_PR3.json] [--baseline ci/perf_baseline.json]
//!              [--tolerance 0.25] [--reps 5] [--write-baseline] [--allow-new]
//!
//! `--write-baseline` re-measures and rewrites the baseline file instead of
//! gating (exit 0); commit the result when the hot paths change on purpose.
//! `--allow-new` lets sites that are missing from the baseline pass (used
//! when gating a branch that adds measurement sites against an older
//! committed baseline).

use chameleon_bench::{Args, ExperimentConfig};
use chameleon_core::AdversaryKnowledge;
use chameleon_core::{
    anonymity_check_threads, edge_reliability_relevance_threads, Chameleon, ChameleonConfig, Method,
};
use chameleon_datasets::DatasetKind;
use chameleon_obs::site::{SpanGuard, SpanSite};
use chameleon_reliability::{sample_distinct_pairs, EnsembleStream, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::GraphBuilder;
use rand::Rng;
use std::fmt::Write as _;

/// Fixed workload: small enough for a sub-minute CI job, large enough that
/// each site runs well above timer resolution.
const SCALE: usize = 400;
const WORLDS: usize = 300;
const SEED: u64 = 42;

/// Strip size for the streamed-ensemble sites (the `--strip-worlds`
/// default; see DESIGN.md §12).
const STRIP_WORLDS: usize = 64;

/// Hard ceiling on the streamed-analysis tax: decoding + analyzing
/// strips from the compressed world store may cost at most this multiple
/// of the in-RAM connectivity analysis on the same pre-sampled worlds.
const STREAMED_OVERHEAD_CEILING: f64 = 1.25;

/// Hard floor on the delta+RLE world store's size win in its target
/// regime (a certain base graph with an appended uncertain fringe).
const COMPRESS_RATIO_FLOOR: f64 = 2.0;

/// Iterations of the calibration loop (~10–40 ms per rep on 2020s x86).
const CALIBRATION_ITERS: u64 = 1 << 24;

static SPAN_CALIBRATION: SpanSite = SpanSite::new("perf.calibration");
static SPAN_SAMPLING: SpanSite = SpanSite::new("perf.smoke.world_sampling");
static SPAN_ANALYZE: SpanSite = SpanSite::new("perf.smoke.ensemble_analyze");
static SPAN_STREAMED: SpanSite = SpanSite::new("perf.smoke.ensemble_streamed");
static SPAN_ERR: SpanSite = SpanSite::new("perf.smoke.err_coupled");
static SPAN_RELIABILITY: SpanSite = SpanSite::new("perf.smoke.reliability_many");
static SPAN_CHECK: SpanSite = SpanSite::new("perf.smoke.anonymity_check");
static SPAN_DISPATCH: SpanSite = SpanSite::new("perf.smoke.server_dispatch");
static SPAN_PIPELINED: SpanSite = SpanSite::new("perf.smoke.server_pipelined_dispatch");
static SPAN_BATCH: SpanSite = SpanSite::new("perf.smoke.server_batch_submit");
static SPAN_JOURNALED: SpanSite = SpanSite::new("perf.smoke.server_journaled_dispatch");
static SPAN_GATEWAY: SpanSite = SpanSite::new("perf.smoke.gateway_dispatch");
static SPAN_E2E: SpanSite = SpanSite::new("perf.smoke.anonymize_e2e");
static SPAN_E2E_INC: SpanSite = SpanSite::new("perf.smoke.anonymize_e2e_incremental");

/// Node pairs for the `reliability_many` site: enough that several
/// `PAIR_BLOCK` windows stream the label matrix.
const RELIABILITY_PAIRS: usize = 3000;

/// Round-trips per dispatch rep; enough that a rep runs well above timer
/// resolution while staying loopback-bound, not compute-bound.
const DISPATCH_ROUNDTRIPS: usize = 200;

/// Hard floor on the batch protocol's amortization: one batch line must
/// cost at least this many times fewer µs/job than lockstep dispatch.
const BATCH_SPEEDUP_FLOOR: f64 = 5.0;

/// Hard ceiling on the durable-jobs tax: lockstep dispatch against a
/// journaled daemon (two appended records per job, interval fsync) may
/// cost at most this multiple of the un-journaled lockstep cost.
const JOURNAL_OVERHEAD_CEILING: f64 = 1.25;

/// Hard ceiling on the gateway tier's tax (DESIGN.md §13): the pipelined
/// cached burst through chameleon-gate — digest routing, a forward-queue
/// hand-off, a pooled backend round-trip and a verbatim relay per job —
/// may cost at most this multiple of ONE direct lockstep round-trip per
/// job (the `server_dispatch` site). Serial lockstep through a proxy has
/// a ≥2x physical floor (a second full loopback hop per job), so the
/// gate instead asserts that a pipelining client overlaps the tier's
/// whole tax — second hop included — into at most 30% above dispatching
/// straight to the backend. Losing the forwarder connection pool (a TCP
/// handshake per job) or burst line-extraction regresses this ~4x.
const GATEWAY_OVERHEAD_CEILING: f64 = 1.3;

/// Lockstep dispatch is dominated by loopback round-trip latency, which
/// shared CI runners perturb far more than compute; a single noisy run
/// must not fail the build, so the speedup gate re-measures (accumulating
/// reps, min-of-all-reps per site) up to this many times before failing.
const SPEEDUP_MEASURE_ATTEMPTS: usize = 3;

/// Runs `f` `reps` times inside `site`, returns the fastest rep in seconds.
fn time_reps<F: FnMut()>(site: &'static SpanSite, reps: usize, mut f: F) -> f64 {
    for _ in 0..reps.max(1) {
        let _g = SpanGuard::enter(site);
        f();
    }
    chameleon_obs::snapshot()
        .span(site.name())
        .map(|s| s.min_s())
        .unwrap_or(0.0)
}

/// Fixed arithmetic workload whose wall time defines one "work unit" on
/// this host. Pure integer xorshift: no memory traffic, no allocator, so
/// it tracks core speed rather than cache or RAM configuration.
fn calibration_workload() {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..CALIBRATION_ITERS {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x);
}

/// Pulls `"key": <number>` out of a flat JSON document (the baseline file
/// is written by this binary, so the format is under our control and a
/// full parser is unnecessary).
fn extract_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

struct Measurement {
    name: &'static str,
    seconds: f64,
    normalized: f64,
    /// `normalized / baseline` once gated; `None` for new or baseline-less
    /// sites.
    vs_baseline: Option<f64>,
}

impl Measurement {
    fn new(name: &'static str, seconds: f64) -> Self {
        Self {
            name,
            seconds,
            normalized: 0.0,
            vs_baseline: None,
        }
    }
}

fn main() {
    assert!(
        chameleon_obs::is_enabled(),
        "perf_smoke times via obs spans; rebuild with the default `obs` feature"
    );
    let args = Args::from_env();
    let out: String = args.get("out", "BENCH_PR10.json".to_string());
    let baseline_path: String = args.get("baseline", "ci/perf_baseline.json".to_string());
    let tolerance: f64 = args.get("tolerance", 0.25f64);
    let reps: usize = args.get("reps", 5usize);
    let write_baseline = args.has("write-baseline");
    let allow_new = args.has("allow-new");

    let mut cfg = ExperimentConfig::from_args(&args);
    cfg.scale = SCALE;
    cfg.worlds = WORLDS;
    cfg.seed = SEED;
    let g = chameleon_bench::build_dataset(DatasetKind::Brightkite, &cfg);
    let knowledge = AdversaryKnowledge::expected_degrees(&g);
    let k = (SCALE / 10).max(2);
    println!(
        "== perf_smoke: n={} m={} worlds={WORLDS} reps={reps} tolerance={tolerance} ==",
        g.num_nodes(),
        g.num_edges()
    );

    // Warm-up pass (build caches, fault in the binary), then clear the
    // registry so spans cover only the timed region.
    let warm = WorldEnsemble::sample_seeded(&g, WORLDS, SEED, 1);
    let _ = edge_reliability_relevance_threads(&g, &warm, 1);
    drop(warm);
    chameleon_obs::reset();

    let calibration_s = time_reps(&SPAN_CALIBRATION, reps, calibration_workload);
    assert!(calibration_s > 0.0, "calibration loop measured zero time");
    println!("calibration: {calibration_s:.4}s per {CALIBRATION_ITERS} xorshift rounds");

    let ens = WorldEnsemble::sample_seeded(&g, WORLDS, SEED, 1);
    let pairs = sample_distinct_pairs(
        g.num_nodes(),
        RELIABILITY_PAIRS,
        &mut SeedSequence::new(SEED).rng("perf-pairs"),
    );
    // Streamed-analysis tax (DESIGN.md §12): decode + analyze
    // STRIP_WORLDS-world strips from the compressed store vs the in-RAM
    // connectivity analysis of the same pre-sampled worlds. Both are
    // compute-bound, but shared runners still jitter, so the ratio is
    // re-measured (minima accumulate in the spans) before it may fail.
    let stream =
        EnsembleStream::sample(&g, WORLDS, SEED, 1, STRIP_WORLDS).expect("no ensemble ceiling");
    let mut analyze_seconds: f64;
    let mut streamed_seconds: f64;
    let mut attempts = 0usize;
    loop {
        attempts += 1;
        analyze_seconds = time_reps(&SPAN_ANALYZE, reps, || {
            let e = WorldEnsemble::from_matrix_threads(&g, ens.matrix().clone(), 1);
            assert_eq!(e.len(), WORLDS);
        });
        streamed_seconds = time_reps(&SPAN_STREAMED, reps, || {
            let mut seen = 0usize;
            stream
                .for_each_strip(|_, s| seen += s.len())
                .expect("strip analyze");
            assert_eq!(seen, WORLDS);
        });
        if streamed_seconds / analyze_seconds <= STREAMED_OVERHEAD_CEILING
            || attempts >= SPEEDUP_MEASURE_ATTEMPTS
        {
            break;
        }
        println!(
            "streamed analyze {:.2}x over the {STREAMED_OVERHEAD_CEILING:.2}x ceiling on attempt \
             {attempts}/{SPEEDUP_MEASURE_ATTEMPTS} (runner noise?); re-measuring",
            streamed_seconds / analyze_seconds
        );
    }
    let streamed_overhead = streamed_seconds / analyze_seconds;
    // world_compress_ratio site: the delta+RLE store gated in its target
    // regime — a certain (p = 1) base graph published with an appended
    // fringe of uncertain candidate edges (the uncertainty-injection
    // shape). Base words equal the template row and collapse into one
    // zero-run token; only fringe words pay literal bytes.
    let injected = {
        let mut b = GraphBuilder::new(g.num_nodes());
        for e in g.edges() {
            b.add_edge(e.u, e.v, 1.0).expect("base edge");
        }
        let mut rng = SeedSequence::new(SEED).rng("perf-compress-fringe");
        let target = g.num_edges() + (g.num_edges() / 5).max(1);
        let mut tries = 0usize;
        while b.num_edges() < target && tries < 100 * target {
            tries += 1;
            let u = rng.gen_range(0..g.num_nodes() as u32);
            let v = rng.gen_range(0..g.num_nodes() as u32);
            if u != v {
                let _ = b.add_edge(u, v, 0.05 + 0.25 * rng.gen::<f64>());
            }
        }
        b.build()
    };
    let world_compress_ratio = EnsembleStream::sample(&injected, WORLDS, SEED, 1, STRIP_WORLDS)
        .expect("no ensemble ceiling")
        .compression_ratio();
    println!(
        "ensemble streamed: {streamed_overhead:.2}x in-RAM analyze (ceiling \
         {STREAMED_OVERHEAD_CEILING:.2}x); world compress ratio {world_compress_ratio:.2}x \
         (floor {COMPRESS_RATIO_FLOOR:.1}x)"
    );
    let sites = [
        Measurement::new(
            "world_sampling",
            time_reps(&SPAN_SAMPLING, reps, || {
                let e = WorldEnsemble::sample_seeded(&g, WORLDS, SEED, 1);
                assert_eq!(e.len(), WORLDS);
            }),
        ),
        // Connectivity analysis alone (union–find, labels, sizes, pair
        // counts) on pre-sampled worlds: isolates the arena/scratch path
        // from the RNG cost that dominates `world_sampling`. Measured
        // above, paired with its strip-streamed counterpart.
        Measurement::new("ensemble_analyze", analyze_seconds),
        Measurement::new("ensemble_streamed", streamed_seconds),
        Measurement::new(
            "err_coupled",
            time_reps(&SPAN_ERR, reps, || {
                let e = edge_reliability_relevance_threads(&g, &ens, 1);
                assert_eq!(e.len(), g.num_edges());
            }),
        ),
        // Blocked streaming of the flat label matrix over many pairs.
        Measurement::new(
            "reliability_many",
            time_reps(&SPAN_RELIABILITY, reps, || {
                let r = ens.reliability_many(&pairs);
                assert_eq!(r.len(), pairs.len());
            }),
        ),
        Measurement::new(
            "anonymity_check",
            time_reps(&SPAN_CHECK, reps, || {
                let r = anonymity_check_threads(&g, &knowledge, k, 1);
                assert!(r.eps_hat.is_finite());
            }),
        ),
    ];
    // End-to-end σ search on the reference workload, plain vs incremental
    // (DESIGN.md §6d). Both runs must succeed; the driver and BENCH json
    // report `anonymize_incremental_speedup` = plain / incremental.
    let anonymize_cfg = |incremental: bool| {
        ChameleonConfig::builder()
            .k(k)
            .epsilon(0.05)
            .trials(5)
            .num_world_samples(WORLDS)
            // A tight bisection tolerance makes the σ search take enough
            // probes that the one-off setup (VRR ensemble, selection) does
            // not dominate either variant.
            .sigma_tolerance(0.02)
            .num_threads(1)
            .incremental(incremental)
            .build()
    };
    let e2e_plain = time_reps(&SPAN_E2E, reps, || {
        let r = Chameleon::new(anonymize_cfg(false))
            .anonymize(&g, Method::Rsme, SEED)
            .expect("plain anonymize on the reference workload");
        std::hint::black_box(r.sigma);
    });
    let e2e_incremental = time_reps(&SPAN_E2E_INC, reps, || {
        let r = Chameleon::new(anonymize_cfg(true))
            .anonymize(&g, Method::Rsme, SEED)
            .expect("incremental anonymize on the reference workload");
        std::hint::black_box(r.sigma);
    });
    let incremental_speedup = e2e_plain / e2e_incremental;
    println!(
        "anonymize e2e: plain {e2e_plain:.4}s, incremental {e2e_incremental:.4}s \
         ({incremental_speedup:.2}x speedup)"
    );
    let sites: Vec<Measurement> = sites
        .into_iter()
        .chain([
            Measurement::new("anonymize_e2e", e2e_plain),
            Measurement::new("anonymize_e2e_incremental", e2e_incremental),
        ])
        .collect();
    // Daemon dispatch overhead: cached `status`-free round-trips through a
    // live loopback chameleond. The job (a tiny check) is primed into the
    // result cache first, so the measurement isolates the service stack —
    // socket, NDJSON parse, queue hand-off, cache hit, response render —
    // from the anonymization math gated by the sites above.
    // A deliberately tiny job: the dispatch sites measure the service stack
    // (framing, queue hand-off, completion wakeups, cache-hit replay), so
    // the payload must not drown the machinery being compared in
    // graph-parse time — per-element parse cost is identical across
    // lockstep/pipelined/batch/journaled and is gated by the math sites
    // above.
    let graph_json = chameleon_obs::json::string("nodes 4\n0 1 0.5\n1 2 0.5\n2 3 0.25\n0 3 0.75\n");
    let req = format!("{{\"op\":\"check\",\"graph\":{graph_json},\"k\":2}}");
    let (dispatch_seconds, pipelined_seconds, batch_seconds) = {
        use std::io::{BufReader, Write};
        let handle = chameleon_server::Server::spawn(chameleon_server::ServerConfig {
            workers: 1,
            // The pipelined site bursts DISPATCH_ROUNDTRIPS individual
            // requests before draining a single reply; the queue must
            // absorb the whole burst or the site measures rejection cost.
            queue_depth: 2 * DISPATCH_ROUNDTRIPS,
            ..chameleon_server::ServerConfig::default()
        })
        .expect("spawn loopback chameleond");
        let addr = handle.addr().to_string();
        let prime = chameleon_server::request_once(&addr, &req).expect("prime dispatch job");
        assert!(prime.contains("\"status\":\"ok\""), "prime failed: {prime}");
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        conn.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut burst = String::new();
        for i in 0..DISPATCH_ROUNDTRIPS {
            let _ = writeln!(
                burst,
                "{{\"op\":\"check\",\"id\":\"p{i}\",\"graph\":{graph_json},\"k\":2}}"
            );
        }
        let mut batch = String::from("{\"op\":\"batch\",\"id\":\"b\",\"requests\":[");
        for i in 0..DISPATCH_ROUNDTRIPS {
            if i > 0 {
                batch.push(',');
            }
            let _ = write!(batch, "{{\"op\":\"check\",\"graph\":{graph_json},\"k\":2}}");
        }
        batch.push_str("]}\n");
        // The lockstep/batch pair feeds the BATCH_SPEEDUP_FLOOR gate; both
        // wall-clock measurements are noisy on shared runners, so when the
        // best-of-reps ratio lands under the floor the pair is re-measured
        // (reps accumulate into the same spans, so each pass can only
        // improve the minima) before the gate is allowed to fail.
        let mut dispatch: f64;
        let mut pipelined: f64;
        let mut batch_s: f64;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            // (a) Strict request→reply lockstep: each job pays a full
            // loopback round-trip plus a reactor wakeup.
            dispatch = time_reps(&SPAN_DISPATCH, reps, || {
                for _ in 0..DISPATCH_ROUNDTRIPS {
                    let resp = chameleon_server::roundtrip(&mut conn, &req).expect("roundtrip");
                    assert!(
                        resp.contains("\"cached\":true"),
                        "expected a cache hit: {resp}"
                    );
                }
            });
            // (b) Pipelined: the same jobs, id-tagged, written in one burst
            // and the replies drained afterwards — round-trips overlap, but
            // each line is still parsed, queued and completed individually.
            pipelined = time_reps(&SPAN_PIPELINED, reps, || {
                conn.write_all(burst.as_bytes()).expect("pipelined write");
                for _ in 0..DISPATCH_ROUNDTRIPS {
                    let resp =
                        chameleon_server::read_response(&mut reader).expect("pipelined read");
                    assert!(
                        resp.contains("\"cached\":true"),
                        "expected a cache hit: {resp}"
                    );
                }
            });
            // (c) Batch: the same jobs as ONE request line occupying one
            // queue slot; the worker renders every reply into a single
            // completion, so queue pop, channel send and reactor wakeup
            // amortize over the lot.
            batch_s = time_reps(&SPAN_BATCH, reps, || {
                conn.write_all(batch.as_bytes()).expect("batch write");
                for _ in 0..DISPATCH_ROUNDTRIPS {
                    let resp = chameleon_server::read_response(&mut reader).expect("batch read");
                    assert!(
                        resp.contains("\"cached\":true"),
                        "expected a cache hit: {resp}"
                    );
                }
            });
            if dispatch / batch_s >= BATCH_SPEEDUP_FLOOR || attempts >= SPEEDUP_MEASURE_ATTEMPTS {
                break;
            }
            println!(
                "batch speedup {:.2}x under the {BATCH_SPEEDUP_FLOOR:.0}x floor on attempt \
                 {attempts}/{SPEEDUP_MEASURE_ATTEMPTS} (runner noise?); re-measuring",
                dispatch / batch_s
            );
        }
        drop(reader);
        drop(conn);
        let _ = chameleon_server::request_once(&addr, "{\"op\":\"shutdown\"}");
        let _ = handle.join();
        (dispatch, pipelined, batch_s)
    };
    // Durable-jobs tax (DESIGN.md §11): the same cached lockstep workload
    // against a *journaled* daemon, where every submit appends an
    // `accepted` and a `completed` record (interval fsync). The gate
    // bounds the ratio to the un-journaled lockstep cost measured above.
    let journal_dir =
        std::env::temp_dir().join(format!("perf-smoke-journal-{}-{SEED}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    std::fs::create_dir_all(&journal_dir).expect("create perf-smoke journal dir");
    let journaled_seconds = {
        let handle = chameleon_server::Server::spawn(chameleon_server::ServerConfig {
            workers: 1,
            queue_depth: 2 * DISPATCH_ROUNDTRIPS,
            journal_dir: Some(journal_dir.to_str().expect("utf-8 temp path").to_string()),
            journal_sync: chameleon_server::JournalSync::Interval,
            ..chameleon_server::ServerConfig::default()
        })
        .expect("spawn journaled loopback chameleond");
        let addr = handle.addr().to_string();
        let prime = chameleon_server::request_once(&addr, &req).expect("prime journaled job");
        assert!(prime.contains("\"status\":\"ok\""), "prime failed: {prime}");
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect journaled");
        conn.set_nodelay(true).expect("nodelay");
        // Like the batch-speedup gate: loopback latency is the noisiest
        // thing CI measures, so the ratio is re-measured (min-of-all-reps
        // accumulates in the span) before it may fail the build.
        let mut journaled: f64;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            journaled = time_reps(&SPAN_JOURNALED, reps, || {
                for _ in 0..DISPATCH_ROUNDTRIPS {
                    let resp =
                        chameleon_server::roundtrip(&mut conn, &req).expect("journaled roundtrip");
                    assert!(
                        resp.contains("\"cached\":true"),
                        "expected a cache hit: {resp}"
                    );
                }
            });
            if journaled / dispatch_seconds <= JOURNAL_OVERHEAD_CEILING
                || attempts >= SPEEDUP_MEASURE_ATTEMPTS
            {
                break;
            }
            println!(
                "journal overhead {:.2}x over the {JOURNAL_OVERHEAD_CEILING:.2}x ceiling on \
                 attempt {attempts}/{SPEEDUP_MEASURE_ATTEMPTS} (runner noise?); re-measuring",
                journaled / dispatch_seconds
            );
        }
        drop(conn);
        let _ = chameleon_server::request_once(&addr, "{\"op\":\"shutdown\"}");
        let _ = handle.join();
        journaled
    };
    let _ = std::fs::remove_dir_all(&journal_dir);
    let journal_overhead = journaled_seconds / dispatch_seconds;
    // Gateway tier tax (DESIGN.md §13): the pipelined cached burst through
    // chameleon-gate fronting one backend, gated against the direct
    // lockstep site above. The verbatim-relay contract forces the forward
    // stage itself to stay lockstep per backend connection (backend
    // completions are worker-ordered, so relayed responses can only be
    // attributed to jobs one round-trip at a time) — but a pipelining
    // client overlaps the gateway reactor, the forwarder pool (over
    // pooled persistent backend connections) and the backend, so the
    // whole tier tax must fit in the ceiling's margin over one direct
    // round-trip per job.
    let gateway_seconds = {
        use std::io::{BufReader, Write};
        let backend = chameleon_server::Server::spawn(chameleon_server::ServerConfig {
            workers: 1,
            queue_depth: 2 * DISPATCH_ROUNDTRIPS,
            ..chameleon_server::ServerConfig::default()
        })
        .expect("spawn gateway backend chameleond");
        let backend_addr = backend.addr().to_string();
        let prime = chameleon_server::request_once(&backend_addr, &req).expect("prime gateway job");
        assert!(prime.contains("\"status\":\"ok\""), "prime failed: {prime}");
        let gate = chameleon_server::Gateway::spawn(chameleon_server::GatewayConfig {
            backends: vec![backend_addr.clone()],
            // Each forwarder is lockstep with the backend, so the pool size
            // sets the forward stage's concurrency; 8 keeps that stage off
            // the critical path without drowning the 1-worker backend.
            forwarders: 8,
            queue_depth: 2 * DISPATCH_ROUNDTRIPS,
            // The probe thread would only add scheduling noise against a
            // backend that cannot die during the measurement.
            health_interval_ms: 0,
            ..chameleon_server::GatewayConfig::default()
        })
        .expect("spawn chameleon-gate");
        let gate_addr = gate.addr().to_string();
        let conn = std::net::TcpStream::connect(&gate_addr).expect("connect gateway");
        conn.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut conn = conn;
        let mut burst = String::new();
        for i in 0..DISPATCH_ROUNDTRIPS {
            let _ = writeln!(
                burst,
                "{{\"op\":\"check\",\"id\":\"g{i}\",\"graph\":{graph_json},\"k\":2}}"
            );
        }
        let mut gateway: f64;
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            gateway = time_reps(&SPAN_GATEWAY, reps, || {
                conn.write_all(burst.as_bytes())
                    .expect("gateway burst write");
                for _ in 0..DISPATCH_ROUNDTRIPS {
                    let resp = chameleon_server::read_response(&mut reader).expect("gateway read");
                    assert!(
                        resp.contains("\"cached\":true"),
                        "expected a cache hit via the gateway: {resp}"
                    );
                }
            });
            if gateway / dispatch_seconds <= GATEWAY_OVERHEAD_CEILING
                || attempts >= SPEEDUP_MEASURE_ATTEMPTS
            {
                break;
            }
            println!(
                "gateway overhead {:.2}x over the {GATEWAY_OVERHEAD_CEILING:.2}x ceiling on \
                 attempt {attempts}/{SPEEDUP_MEASURE_ATTEMPTS} (runner noise?); re-measuring",
                gateway / dispatch_seconds
            );
        }
        drop(reader);
        drop(conn);
        let _ = chameleon_server::request_once(&gate_addr, "{\"op\":\"shutdown\"}");
        let _ = gate.join();
        let _ = chameleon_server::request_once(&backend_addr, "{\"op\":\"shutdown\"}");
        let _ = backend.join();
        gateway
    };
    let gateway_overhead = gateway_seconds / dispatch_seconds;

    let dispatch_us_per_job = dispatch_seconds / DISPATCH_ROUNDTRIPS as f64 * 1e6;
    let batch_us_per_job = batch_seconds / DISPATCH_ROUNDTRIPS as f64 * 1e6;
    let batch_speedup = dispatch_us_per_job / batch_us_per_job;
    println!(
        "dispatch µs/job: lockstep {dispatch_us_per_job:.1}, pipelined {:.1}, \
         batch {batch_us_per_job:.1} ({batch_speedup:.1}x batch speedup), \
         journaled {:.1} ({journal_overhead:.2}x journal overhead), \
         gateway-pipelined {:.1} ({gateway_overhead:.2}x gateway overhead vs pipelined)",
        pipelined_seconds / DISPATCH_ROUNDTRIPS as f64 * 1e6,
        journaled_seconds / DISPATCH_ROUNDTRIPS as f64 * 1e6,
        gateway_seconds / DISPATCH_ROUNDTRIPS as f64 * 1e6
    );

    let mut sites: Vec<Measurement> = sites
        .into_iter()
        .chain([
            Measurement::new("server_dispatch", dispatch_seconds),
            Measurement::new("server_pipelined_dispatch", pipelined_seconds),
            Measurement::new("server_batch_submit", batch_seconds),
            Measurement::new("server_journaled_dispatch", journaled_seconds),
            Measurement::new("gateway_dispatch", gateway_seconds),
        ])
        .map(|m| Measurement {
            normalized: m.seconds / calibration_s,
            ..m
        })
        .collect();

    let baseline = if write_baseline {
        None
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline {baseline_path}: {e}\n\
                     (run `perf_smoke --write-baseline` and commit the file)"
                );
                std::process::exit(1);
            }
        }
    };

    let mut regressions = Vec::new();
    for m in &mut sites {
        let base = baseline
            .as_deref()
            .and_then(|doc| extract_number(doc, m.name));
        let verdict = match base {
            Some(b) if b > 0.0 => {
                let ratio = m.normalized / b;
                m.vs_baseline = Some(ratio);
                if ratio > 1.0 + tolerance {
                    regressions.push((m.name, ratio));
                    format!("REGRESSED {:.2}x vs baseline {b:.3}", ratio)
                } else {
                    format!("ok {:.2}x vs baseline {b:.3}", ratio)
                }
            }
            Some(_) | None if write_baseline => "baseline".to_string(),
            Some(_) | None if allow_new => "new site (allowed)".to_string(),
            _ => {
                regressions.push((m.name, f64::NAN));
                "MISSING from baseline".to_string()
            }
        };
        println!(
            "{:<17} {:.4}s  normalized {:.3}  {verdict}",
            m.name, m.seconds, m.normalized
        );
    }

    if write_baseline {
        let mut doc = String::from("{\n");
        let _ = writeln!(doc, "  \"comment\": \"normalized hot-path costs: site_s / calibration_s; regenerate with perf_smoke --write-baseline\",");
        let _ = writeln!(doc, "  \"calibration_iters\": {CALIBRATION_ITERS},");
        let _ = writeln!(doc, "  \"scale\": {SCALE},");
        let _ = writeln!(doc, "  \"worlds\": {WORLDS},");
        // Informational, not gated sites: the lockstep/batch ratio and the
        // compressed-store win this baseline was written at, for comparing
        // against CI artifacts (their gates are fixed floors, not
        // baseline-relative).
        let _ = writeln!(doc, "  \"batch_speedup\": {batch_speedup:.4},");
        let _ = writeln!(
            doc,
            "  \"world_compress_ratio\": {world_compress_ratio:.4},"
        );
        for (i, m) in sites.iter().enumerate() {
            let sep = if i + 1 < sites.len() { "," } else { "" };
            let _ = writeln!(doc, "  \"{}\": {:.4}{sep}", m.name, m.normalized);
        }
        doc.push_str("}\n");
        if let Err(e) = std::fs::write(&baseline_path, &doc) {
            eprintln!("error: cannot write {baseline_path}: {e}");
            std::process::exit(1);
        }
        println!("(baseline written to {baseline_path})");
    }

    // BENCH_PR3.json: measurements + the full metrics snapshot (spans of
    // this run, pipeline counters, chunk histograms) for the CI artifact.
    // `vs_baseline` is `normalized / committed-baseline` — < 1.0 means the
    // hot path got faster than the baseline commit.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf smoke gate\",");
    let _ = writeln!(json, "  \"timer\": \"obs span, min of reps\",");
    let _ = writeln!(
        json,
        "  \"anonymize_incremental_speedup\": {incremental_speedup:.4},"
    );
    let _ = writeln!(json, "  \"dispatch_us_per_job\": {dispatch_us_per_job:.2},");
    let _ = writeln!(json, "  \"batch_us_per_job\": {batch_us_per_job:.2},");
    let _ = writeln!(json, "  \"batch_speedup\": {batch_speedup:.4},");
    let _ = writeln!(
        json,
        "  \"journal_append_overhead\": {journal_overhead:.4},"
    );
    let _ = writeln!(
        json,
        "  \"gateway_dispatch_overhead\": {gateway_overhead:.4},"
    );
    let _ = writeln!(
        json,
        "  \"ensemble_streamed_overhead\": {streamed_overhead:.4},"
    );
    let _ = writeln!(
        json,
        "  \"world_compress_ratio\": {world_compress_ratio:.4},"
    );
    let _ = writeln!(json, "  \"scale\": {SCALE},");
    let _ = writeln!(json, "  \"worlds\": {WORLDS},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"tolerance\": {tolerance},");
    let _ = writeln!(json, "  \"calibration_s\": {calibration_s:.6},");
    for m in &sites {
        let vs = m
            .vs_baseline
            .map_or("null".to_string(), |r| format!("{r:.4}"));
        let _ = writeln!(
            json,
            "  \"{}\": {{ \"seconds\": {:.6}, \"normalized\": {:.4}, \"vs_baseline\": {vs} }},",
            m.name, m.seconds, m.normalized
        );
    }
    let _ = writeln!(json, "  \"regressions\": {},", regressions.len());
    let _ = writeln!(
        json,
        "  \"metrics\": {}",
        indent_json(&chameleon_obs::metrics_json())
    );
    json.push_str("}\n");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("(json written to {out})"),
        Err(e) => eprintln!("warning: could not write {out}: {e}"),
    }

    if !regressions.is_empty() {
        eprintln!(
            "perf_smoke FAILED: {} hot path(s) regressed beyond {:.0}%: {}",
            regressions.len(),
            tolerance * 100.0,
            regressions
                .iter()
                .map(|(n, r)| format!("{n} ({r:.2}x)"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
    // Hard floor on the batch protocol's amortization: one batch line must
    // cost at least 5x fewer µs/job than lockstep single-request dispatch,
    // or the queue-slot/completion amortization has silently regressed.
    // The ratio was already re-measured up to SPEEDUP_MEASURE_ATTEMPTS
    // times above, so reaching here under the floor is persistent, not one
    // noisy run.
    if batch_speedup < BATCH_SPEEDUP_FLOOR {
        eprintln!(
            "perf_smoke FAILED: batch submit amortization {batch_speedup:.2}x < required \
             {BATCH_SPEEDUP_FLOOR:.0}x after {SPEEDUP_MEASURE_ATTEMPTS} measurement attempts \
             (lockstep {dispatch_us_per_job:.1} µs/job vs batch {batch_us_per_job:.1} µs/job)"
        );
        std::process::exit(1);
    }
    // Hard ceiling on the durable-jobs tax: journaling a cached submit may
    // not cost more than JOURNAL_OVERHEAD_CEILING× the un-journaled path.
    // Also re-measured above, so a failure here is persistent.
    if journal_overhead > JOURNAL_OVERHEAD_CEILING {
        eprintln!(
            "perf_smoke FAILED: journaled dispatch overhead {journal_overhead:.2}x > allowed \
             {JOURNAL_OVERHEAD_CEILING:.2}x after {SPEEDUP_MEASURE_ATTEMPTS} measurement \
             attempts (un-journaled {dispatch_us_per_job:.1} µs/job)"
        );
        std::process::exit(1);
    }
    // Hard ceiling on the gateway tier's tax: the pipelined cached burst
    // through chameleon-gate may not cost more than
    // GATEWAY_OVERHEAD_CEILING× the same burst sent directly to the
    // backend. Also re-measured above, so a failure here is persistent.
    if gateway_overhead > GATEWAY_OVERHEAD_CEILING {
        eprintln!(
            "perf_smoke FAILED: gateway pipelined overhead {gateway_overhead:.2}x > allowed \
             {GATEWAY_OVERHEAD_CEILING:.2}x after {SPEEDUP_MEASURE_ATTEMPTS} measurement \
             attempts (direct lockstep {dispatch_us_per_job:.1} µs/job)"
        );
        std::process::exit(1);
    }
    // Out-of-core gates (DESIGN.md §12): strip-streamed analysis may not
    // tax the in-RAM analyze beyond its ceiling (re-measured above), and
    // the delta+RLE store must actually win in its target regime.
    if streamed_overhead > STREAMED_OVERHEAD_CEILING {
        eprintln!(
            "perf_smoke FAILED: streamed ensemble analysis {streamed_overhead:.2}x > allowed \
             {STREAMED_OVERHEAD_CEILING:.2}x of in-RAM analyze after \
             {SPEEDUP_MEASURE_ATTEMPTS} measurement attempts"
        );
        std::process::exit(1);
    }
    if world_compress_ratio < COMPRESS_RATIO_FLOOR {
        eprintln!(
            "perf_smoke FAILED: compressed world store only {world_compress_ratio:.2}x smaller \
             than dense (floor {COMPRESS_RATIO_FLOOR:.1}x) on the injected-fringe workload"
        );
        std::process::exit(1);
    }
    println!("perf_smoke passed");
}

/// Re-indents a JSON document for embedding as a nested object value.
fn indent_json(doc: &str) -> String {
    doc.trim_end().replace('\n', "\n  ")
}
