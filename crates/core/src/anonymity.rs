//! The (k, ε)-obfuscation anonymity check (paper Definition 3, after
//! Boldi et al. VLDB 2012).
//!
//! The adversary knows the *degree* of a target vertex in the original
//! graph and tries to locate it in the published uncertain graph `G̃`. For
//! a property value ω, the adversary's posterior over vertices is
//!
//! ```text
//! Y_ω(u) = Pr[deg_G̃(u) = ω] / Σ_w Pr[deg_G̃(w) = ω]
//! ```
//!
//! where `deg_G̃(u)` is Poisson–binomial over `u`'s incident edge
//! probabilities. A vertex `v` with original property ω_v is k-obfuscated
//! iff `H(Y_{ω_v}) ≥ log₂ k`; the graph is (k, ε)-obf iff at most `ε·|V|`
//! vertices fail.
//!
//! For an uncertain *original* graph, the adversary value ω_v is taken to
//! be the rounded expected degree of `v` in the original graph (DESIGN.md
//! §3); for a deterministic original it is the plain degree — both are
//! covered by [`AdversaryKnowledge`].

use chameleon_stats::parallel;
use chameleon_stats::poisson_binomial::pmf_truncated;
use chameleon_stats::{shannon_entropy_bits, WeightTotal};
use chameleon_ugraph::{NodeId, UncertainGraph};
use std::collections::HashMap;

/// Builds the per-vertex truncated degree pmfs — the dominant cost of the
/// anonymity check — on up to `threads` worker threads. Each vertex's pmf
/// is a pure function of its incident probabilities, so the output is
/// identical for every thread count.
fn degree_pmfs(published: &UncertainGraph, omega_max: usize, threads: usize) -> Vec<Vec<f64>> {
    let _span = chameleon_obs::span!("anonymity.degree_pmfs");
    chameleon_obs::counter!("anonymity.pmfs_built").add(published.num_nodes() as u64);
    parallel::map_items(published.num_nodes(), threads, |v| {
        pmf_truncated(&published.incident_probs(v as u32), omega_max)
    })
}

/// The adversary's background knowledge: one property value per vertex of
/// the original graph (paper: "The popular assumption of auxiliary
/// information is node degree").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryKnowledge {
    /// ω_v for every vertex of the original graph.
    targets: Vec<u32>,
}

impl AdversaryKnowledge {
    /// Degree knowledge for an uncertain original graph: ω_v =
    /// round(E[deg_G(v)]).
    pub fn expected_degrees(original: &UncertainGraph) -> Self {
        Self {
            targets: original
                .expected_degrees()
                .iter()
                .map(|&d| d.round() as u32)
                .collect(),
        }
    }

    /// Degree knowledge for a deterministic original graph: ω_v = deg(v).
    pub fn structural_degrees(original: &UncertainGraph) -> Self {
        Self {
            targets: (0..original.num_nodes() as u32)
                .map(|v| original.degree(v) as u32)
                .collect(),
        }
    }

    /// Explicit property values (for tests and custom adversaries).
    pub fn from_values(targets: Vec<u32>) -> Self {
        Self { targets }
    }

    /// ω_v for vertex `v`.
    pub fn target(&self, v: NodeId) -> u32 {
        self.targets[v as usize]
    }

    /// All target values.
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// True when no vertices are covered.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

/// Outcome of the anonymity check.
#[derive(Debug, Clone, PartialEq)]
pub struct AnonymityReport {
    /// Fraction of vertices NOT k-obfuscated (the ε̃ returned by GenObf).
    pub eps_hat: f64,
    /// Vertices that failed the entropy bound, ascending.
    pub unobfuscated: Vec<NodeId>,
    /// Entropy (bits) of `Y_ω` for every distinct adversary value ω.
    pub entropy_by_omega: HashMap<u32, f64>,
    /// The k that was checked.
    pub k: usize,
}

impl AnonymityReport {
    /// True when the graph is (k, ε)-obfuscated at tolerance `epsilon`.
    pub fn satisfies(&self, epsilon: f64) -> bool {
        self.eps_hat <= epsilon
    }

    /// Number of obfuscated vertices.
    pub fn obfuscated_count(&self, total: usize) -> usize {
        total - self.unobfuscated.len()
    }
}

/// Variant of [`anonymity_check`] for an adversary with *approximate*
/// degree knowledge: the posterior weight of vertex `u` for target value ω
/// is `Pr[|deg_G̃(u) − ω| ≤ tolerance]` instead of an exact match.
///
/// This models the practical attacker the k-obfuscation literature calls
/// "fuzzy matching" (paper §III-C: "blend every vertex with other
/// fuzzy-matching nodes"): real auxiliary information (contact counts,
/// co-author counts) is rarely exact. `tolerance = 0` coincides with
/// [`anonymity_check`].
///
/// # Panics
/// Same contract as [`anonymity_check`].
pub fn anonymity_check_tolerant(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    k: usize,
    tolerance: u32,
) -> AnonymityReport {
    anonymity_check_tolerant_threads(published, knowledge, k, tolerance, 1)
}

/// [`anonymity_check_tolerant`] with the degree-pmf construction spread
/// over up to `threads` worker threads (`0` = all hardware threads). The
/// report is identical for every thread count.
///
/// # Panics
/// Same contract as [`anonymity_check`].
pub fn anonymity_check_tolerant_threads(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    k: usize,
    tolerance: u32,
    threads: usize,
) -> AnonymityReport {
    let _span = chameleon_obs::span!("anonymity.check.tolerant");
    chameleon_obs::counter!("anonymity.checks").add(1);
    assert!(k >= 1, "k must be at least 1");
    let n = published.num_nodes();
    assert_eq!(
        knowledge.len(),
        n,
        "adversary knowledge must cover every vertex"
    );
    if n == 0 {
        return AnonymityReport {
            eps_hat: 0.0,
            unobfuscated: Vec::new(),
            entropy_by_omega: HashMap::new(),
            k,
        };
    }
    // Widen to usize *before* adding: `omega + tolerance` in u32 can
    // overflow (panic in debug, silent wrap in release) for adversary
    // values near u32::MAX. usize is 64-bit on every supported target, but
    // saturate anyway so the bound is safe unconditionally.
    let omega_max = (knowledge.targets().iter().copied().max().unwrap_or(0) as usize)
        .saturating_add(tolerance as usize);
    let pmfs = degree_pmfs(published, omega_max, threads);
    let mut entropy_by_omega: HashMap<u32, f64> = HashMap::new();
    for &omega in knowledge.targets() {
        entropy_by_omega.entry(omega).or_insert(f64::NAN);
    }
    let threshold = (k as f64).log2();
    let mut weights = vec![0.0; n];
    for (&omega, slot) in entropy_by_omega.iter_mut() {
        let lo = (omega as usize).saturating_sub(tolerance as usize);
        let hi = (omega as usize).saturating_add(tolerance as usize);
        for (u, pmf) in pmfs.iter().enumerate() {
            // Clamp the window to the pmf's support: entries past the end
            // are exact 0.0 summands, so skipping them is bit-identical
            // and keeps the sweep O(window ∩ support) even for huge ω.
            let top = hi.min(pmf.len() - 1);
            weights[u] = if lo <= top {
                pmf[lo..=top].iter().sum()
            } else {
                0.0
            };
        }
        *slot = shannon_entropy_bits(&weights);
    }
    let mut unobfuscated = Vec::new();
    for v in 0..n as u32 {
        if entropy_by_omega[&knowledge.target(v)] < threshold {
            unobfuscated.push(v);
        }
    }
    AnonymityReport {
        eps_hat: unobfuscated.len() as f64 / n as f64,
        unobfuscated,
        entropy_by_omega,
        k,
    }
}

/// Checks whether `published` k-obfuscates the vertices of the original
/// graph described by `knowledge` (paper Definition 3; the
/// `anonymityCheck` of Algorithm 3 line 24).
///
/// Complexity: O(Σ_v d_v·min(d_v, ω_max)) for the degree pmfs (truncated
/// Poisson–binomial DP) plus O(|Ω|·|V|) for the entropy sweep.
///
/// # Panics
/// Panics if `knowledge` covers a different number of vertices than
/// `published` or `k == 0`.
pub fn anonymity_check(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    k: usize,
) -> AnonymityReport {
    anonymity_check_threads(published, knowledge, k, 1)
}

/// [`anonymity_check`] with the degree-pmf construction spread over up to
/// `threads` worker threads (`0` = all hardware threads). The report is
/// identical for every thread count: the pmfs are pure per-vertex
/// computations and the entropy sweep stays serial.
///
/// # Panics
/// Same contract as [`anonymity_check`].
pub fn anonymity_check_threads(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    k: usize,
    threads: usize,
) -> AnonymityReport {
    let _span = chameleon_obs::span!("anonymity.check");
    chameleon_obs::counter!("anonymity.checks").add(1);
    assert!(k >= 1, "k must be at least 1");
    let n = published.num_nodes();
    assert_eq!(
        knowledge.len(),
        n,
        "adversary knowledge must cover every vertex"
    );
    if n == 0 {
        return AnonymityReport {
            eps_hat: 0.0,
            unobfuscated: Vec::new(),
            entropy_by_omega: HashMap::new(),
            k,
        };
    }
    // ω_max is a plain u32 → usize widening (no arithmetic), so unlike the
    // tolerant variant there is nothing to saturate here.
    let omega_max = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
    // Per-vertex degree pmf, truncated at ω_max (values above are never
    // queried).
    let pmfs = degree_pmfs(published, omega_max, threads);
    exact_entropy_sweep(&pmfs, knowledge, k)
}

/// Strip-streamed [`anonymity_check_threads`]: degree pmfs are built for
/// one strip of `strip_vertices` vertices at a time and discarded, so the
/// check holds O(strip·ω_max) floats instead of O(|V|·ω_max).
///
/// Entropies are accumulated with the two-phase streaming accumulators of
/// `chameleon_stats::entropy` ([`WeightTotal`] then
/// [`chameleon_stats::EntropyTerms`]), replaying each distinct ω's weight
/// sequence in ascending vertex order across two pmf passes — the exact
/// arithmetic [`shannon_entropy_bits`] performs on the materialized weight
/// slice — so the report is **bit-identical** to the in-RAM check for
/// every strip size and thread count. The trade is CPU for memory: each
/// vertex's pmf is built twice.
///
/// # Panics
/// Same contract as [`anonymity_check`].
pub fn anonymity_check_streamed(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    k: usize,
    strip_vertices: usize,
    threads: usize,
) -> AnonymityReport {
    let _span = chameleon_obs::span!("anonymity.check.streamed");
    chameleon_obs::counter!("anonymity.checks").add(1);
    assert!(k >= 1, "k must be at least 1");
    let n = published.num_nodes();
    assert_eq!(
        knowledge.len(),
        n,
        "adversary knowledge must cover every vertex"
    );
    if n == 0 {
        return AnonymityReport {
            eps_hat: 0.0,
            unobfuscated: Vec::new(),
            entropy_by_omega: HashMap::new(),
            k,
        };
    }
    let strip = strip_vertices.max(1);
    let omega_max = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
    let strip_pmfs = |base: usize, len: usize| {
        chameleon_obs::counter!("anonymity.pmfs_built").add(len as u64);
        parallel::map_items(len, threads, |i| {
            pmf_truncated(&published.incident_probs((base + i) as u32), omega_max)
        })
    };
    // Pass 1: per-ω weight totals, strips visited in ascending vertex
    // order — the same `+=` sequence the slice sweep performs.
    let mut totals: HashMap<u32, WeightTotal> = HashMap::new();
    for &omega in knowledge.targets() {
        totals.entry(omega).or_default();
    }
    let mut base = 0;
    while base < n {
        let len = strip.min(n - base);
        let pmfs = strip_pmfs(base, len);
        for pmf in &pmfs {
            for (&omega, tot) in totals.iter_mut() {
                tot.add(pmf.get(omega as usize).copied().unwrap_or(0.0));
            }
        }
        base += len;
    }
    // Pass 2: replay the identical weight sequence into the entropy terms.
    let mut terms: HashMap<u32, chameleon_stats::EntropyTerms> = totals
        .into_iter()
        .map(|(omega, tot)| (omega, tot.into_terms()))
        .collect();
    let mut base = 0;
    while base < n {
        let len = strip.min(n - base);
        let pmfs = strip_pmfs(base, len);
        for pmf in &pmfs {
            for (&omega, term) in terms.iter_mut() {
                term.add(pmf.get(omega as usize).copied().unwrap_or(0.0));
            }
        }
        base += len;
    }
    let entropy_by_omega: HashMap<u32, f64> = terms
        .into_iter()
        .map(|(omega, term)| (omega, term.bits()))
        .collect();
    let threshold = (k as f64).log2();
    let mut unobfuscated = Vec::new();
    for v in 0..n as u32 {
        if entropy_by_omega[&knowledge.target(v)] < threshold {
            unobfuscated.push(v);
        }
    }
    AnonymityReport {
        eps_hat: unobfuscated.len() as f64 / n as f64,
        unobfuscated,
        entropy_by_omega,
        k,
    }
}

/// The entropy sweep of the exact (tolerance-0) check: one posterior per
/// distinct adversary value, one entropy comparison per vertex. Shared by
/// [`anonymity_check_threads`] and [`anonymity_check_cached`] so the two
/// paths are bit-identical by construction.
fn exact_entropy_sweep(
    pmfs: &[Vec<f64>],
    knowledge: &AdversaryKnowledge,
    k: usize,
) -> AnonymityReport {
    let n = pmfs.len();
    // Distinct adversary values.
    let mut entropy_by_omega: HashMap<u32, f64> = HashMap::new();
    for &omega in knowledge.targets() {
        entropy_by_omega.entry(omega).or_insert(f64::NAN);
    }
    let threshold = (k as f64).log2();
    let mut weights = vec![0.0; n];
    for (&omega, slot) in entropy_by_omega.iter_mut() {
        let w = omega as usize;
        for (u, pmf) in pmfs.iter().enumerate() {
            weights[u] = pmf.get(w).copied().unwrap_or(0.0);
        }
        *slot = shannon_entropy_bits(&weights);
    }
    let mut unobfuscated = Vec::new();
    for v in 0..n as u32 {
        let h = entropy_by_omega[&knowledge.target(v)];
        if h < threshold {
            unobfuscated.push(v);
        }
    }
    AnonymityReport {
        eps_hat: unobfuscated.len() as f64 / n as f64,
        unobfuscated,
        entropy_by_omega,
        k,
    }
}

/// Per-vertex truncated degree pmfs cached across anonymity checks.
///
/// Inside GenObf's σ-probe loop consecutive candidate graphs differ on a
/// few hundred edges, so most vertices keep their incident-probability
/// multiset — and their pmf — from one check to the next. The cache stores
/// every vertex's pmf (truncated at the adversary's maximal value, which
/// is fixed per anonymize run) and recomputes only vertices the caller
/// marks dirty.
///
/// **Exactness**: a pmf rebuilt from the same incident probabilities *in
/// the same adjacency order* is bit-identical (the truncated DP is a fixed
/// float program of its input sequence), and entries `≤ ω` of the DP do
/// not depend on the truncation cap, so a cache built with any
/// `omega_max ≥ max ω` yields reports bit-identical to
/// [`anonymity_check_threads`].
#[derive(Debug, Clone)]
pub struct DegreePmfCache {
    omega_max: usize,
    pmfs: Vec<Vec<f64>>,
}

impl DegreePmfCache {
    /// Builds the cache for `published` against `knowledge` (the cap is
    /// the adversary's maximal value, matching [`anonymity_check`]).
    ///
    /// # Panics
    /// Panics if `knowledge` covers a different number of vertices.
    pub fn build(
        published: &UncertainGraph,
        knowledge: &AdversaryKnowledge,
        threads: usize,
    ) -> Self {
        assert_eq!(
            knowledge.len(),
            published.num_nodes(),
            "adversary knowledge must cover every vertex"
        );
        let omega_max = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
        Self {
            omega_max,
            pmfs: degree_pmfs(published, omega_max, threads),
        }
    }

    /// The truncation cap (`max ω`) the pmfs were built with.
    pub fn omega_max(&self) -> usize {
        self.omega_max
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.pmfs.len()
    }

    /// True when the cache covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.pmfs.is_empty()
    }

    /// Cached pmf of vertex `v`.
    pub fn pmf(&self, v: NodeId) -> &[f64] {
        &self.pmfs[v as usize]
    }

    /// Recomputes the pmfs of `dirty` vertices from `published`'s current
    /// incident probabilities. Every vertex whose incident-probability
    /// sequence changed since the last refresh must be listed; duplicates
    /// are harmless.
    pub fn refresh(&mut self, published: &UncertainGraph, dirty: &[NodeId]) {
        chameleon_obs::counter!("anonymity.pmfs_built").add(dirty.len() as u64);
        chameleon_obs::counter!("anonymity.pmfs_reused")
            .add(self.pmfs.len().saturating_sub(dirty.len()) as u64);
        for &v in dirty {
            self.pmfs[v as usize] = pmf_truncated(&published.incident_probs(v), self.omega_max);
        }
    }

    /// Recomputes vertex `v`'s pmf from an explicit incident-probability
    /// sequence. The caller must supply the probabilities in the same
    /// order [`UncertainGraph::incident_probs`] would produce for the
    /// graph being modelled — the DP result depends on it bit-for-bit.
    pub fn set_from_probs(&mut self, v: NodeId, incident: &[f64]) {
        self.pmfs[v as usize] = pmf_truncated(incident, self.omega_max);
    }
}

/// [`anonymity_check`] reading degree pmfs from a [`DegreePmfCache`]
/// instead of rebuilding them: the entropy sweep is the same code, so the
/// report is bit-identical to the direct check whenever the cache is
/// up to date with the published graph.
///
/// # Panics
/// Panics if the cache and `knowledge` disagree on the vertex count, if
/// the cache's cap is below the adversary's maximal value, or `k == 0`.
pub fn anonymity_check_cached(
    cache: &DegreePmfCache,
    knowledge: &AdversaryKnowledge,
    k: usize,
) -> AnonymityReport {
    let _span = chameleon_obs::span!("anonymity.check.cached");
    chameleon_obs::counter!("anonymity.checks").add(1);
    assert!(k >= 1, "k must be at least 1");
    assert_eq!(
        knowledge.len(),
        cache.len(),
        "adversary knowledge must cover every vertex"
    );
    let max_omega = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
    assert!(
        cache.omega_max() >= max_omega,
        "cache truncated at {} but the adversary queries {}",
        cache.omega_max(),
        max_omega
    );
    if cache.is_empty() {
        return AnonymityReport {
            eps_hat: 0.0,
            unobfuscated: Vec::new(),
            entropy_by_omega: HashMap::new(),
            k,
        };
    }
    exact_entropy_sweep(&cache.pmfs, knowledge, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n disconnected edges, all with probability p: every vertex is
    /// statistically identical.
    fn matching(pairs: usize, p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(2 * pairs);
        for i in 0..pairs as u32 {
            g.add_edge(2 * i, 2 * i + 1, p).unwrap();
        }
        g
    }

    #[test]
    fn symmetric_graph_fully_obfuscated_at_n() {
        // 8 identical vertices: Y_ω is uniform over all 8 → H = 3 bits →
        // k-obf for k ≤ 8.
        let g = matching(4, 0.5);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let rep = anonymity_check(&g, &knowledge, 8);
        assert_eq!(rep.eps_hat, 0.0);
        assert!(rep.unobfuscated.is_empty());
        assert!(rep.satisfies(0.0));
        let h = rep.entropy_by_omega[&1]; // ω = round(0.5) = 1? no: E[deg]=0.5 → round = 1? 0.5_f64.round() = 1
        assert!((h - 3.0).abs() < 1e-9, "h={h}");
    }

    #[test]
    fn symmetric_graph_fails_above_n() {
        let g = matching(4, 0.5);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let rep = anonymity_check(&g, &knowledge, 9);
        assert_eq!(rep.eps_hat, 1.0);
        assert_eq!(rep.unobfuscated.len(), 8);
        assert!(!rep.satisfies(0.5));
    }

    #[test]
    fn unique_hub_is_exposed() {
        // Hub of deterministic degree 5 among degree-1 leaves: Y_5 is a
        // point mass on the hub → H = 0 → unobfuscated for any k ≥ 2.
        let mut g = UncertainGraph::with_nodes(6);
        for v in 1..6u32 {
            g.add_edge(0, v, 1.0).unwrap();
        }
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let rep = anonymity_check(&g, &knowledge, 2);
        assert!(rep.unobfuscated.contains(&0));
        assert!((rep.entropy_by_omega[&5]).abs() < 1e-12);
        // Leaves hide among each other: H(Y_1) = log2(5) ≈ 2.32 ≥ 1.
        assert!(!rep.unobfuscated.contains(&1));
        assert!((rep.eps_hat - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_blends_degrees() {
        // Same hub topology but probabilistic edges: the hub's degree
        // spreads over 0..=5, leaves over 0..=1; with p=0.5 the posterior
        // for ω=3 (hub's expected degree) is dominated by the hub but leaves
        // contribute nothing (leaf max degree 1 < 3).
        let mut g = UncertainGraph::with_nodes(6);
        for v in 1..6u32 {
            g.add_edge(0, v, 0.5).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        // ω_hub = round(2.5) = 3 (ties round away from zero), ω_leaf = round(0.5) = 1.
        assert_eq!(knowledge.target(0), 3);
        assert_eq!(knowledge.target(1), 1);
        let rep = anonymity_check(&g, &knowledge, 2);
        // Y_3 = point mass on hub (only vertex that can reach degree 3).
        assert!(rep.entropy_by_omega[&3].abs() < 1e-12);
        assert!(rep.unobfuscated.contains(&0));
        // Y_1: hub has Pr[deg=1] = 5·(.5)^5 = 5/32; leaves Pr = .5 each →
        // near-uniform over 5 leaves + small hub → H > log2(2).
        assert!(rep.entropy_by_omega[&1] > 1.0);
    }

    #[test]
    fn k_equal_one_is_trivially_satisfied() {
        let g = matching(2, 0.3);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let rep = anonymity_check(&g, &knowledge, 1);
        assert_eq!(rep.eps_hat, 0.0);
    }

    #[test]
    fn empty_graph_trivially_obfuscated() {
        let g = UncertainGraph::with_nodes(0);
        let knowledge = AdversaryKnowledge::from_values(vec![]);
        let rep = anonymity_check(&g, &knowledge, 10);
        assert_eq!(rep.eps_hat, 0.0);
        assert!(knowledge.is_empty());
    }

    #[test]
    fn zero_probability_omega_gives_zero_entropy() {
        // ω that no vertex can attain → all-zero weights → H = 0 →
        // unobfuscated.
        let g = matching(2, 1.0);
        let knowledge = AdversaryKnowledge::from_values(vec![7, 1, 1, 1]);
        let rep = anonymity_check(&g, &knowledge, 2);
        assert!(rep.unobfuscated.contains(&0));
        assert_eq!(rep.entropy_by_omega[&7], 0.0);
    }

    #[test]
    fn report_counts() {
        let g = matching(3, 0.5);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let rep = anonymity_check(&g, &knowledge, 4);
        assert_eq!(rep.obfuscated_count(6), 6 - rep.unobfuscated.len());
        assert_eq!(rep.k, 4);
    }

    #[test]
    #[should_panic]
    fn mismatched_knowledge_panics() {
        let g = matching(2, 0.5);
        let knowledge = AdversaryKnowledge::from_values(vec![1, 1]);
        let _ = anonymity_check(&g, &knowledge, 2);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let g = matching(1, 0.5);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let _ = anonymity_check(&g, &knowledge, 0);
    }

    #[test]
    fn threaded_check_is_thread_count_invariant() {
        let mut g = UncertainGraph::with_nodes(30);
        for v in 1..30u32 {
            g.add_edge(0, v, 0.4).unwrap();
            g.add_edge(v, (v % 29) + 1, 0.6).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let serial = anonymity_check_threads(&g, &knowledge, 4, 1);
        let serial_tol = anonymity_check_tolerant_threads(&g, &knowledge, 4, 1, 1);
        for threads in [2, 4, 8] {
            let par = anonymity_check_threads(&g, &knowledge, 4, threads);
            assert_eq!(serial.unobfuscated, par.unobfuscated);
            assert_eq!(serial.eps_hat.to_bits(), par.eps_hat.to_bits());
            for (omega, h) in &serial.entropy_by_omega {
                assert_eq!(h.to_bits(), par.entropy_by_omega[omega].to_bits());
            }
            let par_tol = anonymity_check_tolerant_threads(&g, &knowledge, 4, 1, threads);
            assert_eq!(serial_tol.unobfuscated, par_tol.unobfuscated);
            assert_eq!(serial_tol.eps_hat.to_bits(), par_tol.eps_hat.to_bits());
        }
        // The plain entry points are exactly the 1-thread variants.
        let plain = anonymity_check(&g, &knowledge, 4);
        assert_eq!(plain.unobfuscated, serial.unobfuscated);
    }

    #[test]
    fn streamed_check_is_bit_identical_to_in_ram() {
        let mut g = UncertainGraph::with_nodes(30);
        for v in 1..30u32 {
            g.add_edge(0, v, 0.4).unwrap();
            g.add_edge(v, (v % 29) + 1, 0.6).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let dense = anonymity_check(&g, &knowledge, 4);
        for strip in [1usize, 7, 30, 1000] {
            for threads in [1usize, 4] {
                let streamed = anonymity_check_streamed(&g, &knowledge, 4, strip, threads);
                assert_eq!(dense.unobfuscated, streamed.unobfuscated, "strip {strip}");
                assert_eq!(dense.eps_hat.to_bits(), streamed.eps_hat.to_bits());
                assert_eq!(dense.k, streamed.k);
                assert_eq!(
                    dense.entropy_by_omega.len(),
                    streamed.entropy_by_omega.len()
                );
                for (omega, h) in &dense.entropy_by_omega {
                    assert_eq!(
                        h.to_bits(),
                        streamed.entropy_by_omega[omega].to_bits(),
                        "omega {omega}, strip {strip}, {threads} threads"
                    );
                }
            }
        }
        // Degenerate inputs keep the in-RAM conventions.
        let empty = UncertainGraph::with_nodes(0);
        let none = AdversaryKnowledge::from_values(vec![]);
        let rep = anonymity_check_streamed(&empty, &none, 5, 0, 1);
        assert_eq!(rep.eps_hat, 0.0);
        assert!(rep.entropy_by_omega.is_empty());
    }

    #[test]
    fn zero_tolerance_matches_exact_check() {
        let mut g = UncertainGraph::with_nodes(6);
        for v in 1..6u32 {
            g.add_edge(0, v, 0.7).unwrap();
        }
        g.add_edge(1, 2, 0.3).unwrap();
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let exact = anonymity_check(&g, &knowledge, 3);
        let tol0 = anonymity_check_tolerant(&g, &knowledge, 3, 0);
        assert_eq!(exact.unobfuscated, tol0.unobfuscated);
        assert_eq!(exact.eps_hat, tol0.eps_hat);
        for (omega, h) in &exact.entropy_by_omega {
            assert!((h - tol0.entropy_by_omega[omega]).abs() < 1e-12);
        }
    }

    #[test]
    fn tolerance_blends_adjacent_classes() {
        // Deterministic path 0-1-2-3: exact adversary distinguishes
        // endpoints (deg 1) from middles (deg 2): H(Y_1) = 1 bit. With
        // tolerance 1, every vertex matches both values → uniform over 4
        // → 2 bits.
        let mut g = UncertainGraph::with_nodes(4);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 1.0).unwrap();
        g.add_edge(2, 3, 1.0).unwrap();
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let exact = anonymity_check(&g, &knowledge, 2);
        let fuzzy = anonymity_check_tolerant(&g, &knowledge, 2, 1);
        assert!((exact.entropy_by_omega[&1] - 1.0).abs() < 1e-12);
        assert!((fuzzy.entropy_by_omega[&1] - 2.0).abs() < 1e-12);
        assert!((fuzzy.entropy_by_omega[&2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tolerant_adversary_is_weaker_on_smooth_graphs() {
        // A graph with a spread of expected degrees: widening the window
        // never decreases the number of obfuscated vertices here.
        let mut g = UncertainGraph::with_nodes(12);
        for v in 1..12u32 {
            g.add_edge(0, v, 0.5).unwrap();
        }
        for v in 1..11u32 {
            g.add_edge(v, v + 1, 0.5).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let exact = anonymity_check_tolerant(&g, &knowledge, 4, 0);
        let fuzzy = anonymity_check_tolerant(&g, &knowledge, 4, 2);
        assert!(fuzzy.unobfuscated.len() <= exact.unobfuscated.len());
    }

    #[test]
    fn tolerant_check_survives_adversary_values_near_u32_max() {
        // Regression: `omega + tolerance` used to be a u32 add that
        // panicked in debug (wrapped in release) for targets near
        // u32::MAX. The window must saturate instead.
        let g = matching(2, 1.0);
        let knowledge = AdversaryKnowledge::from_values(vec![u32::MAX, u32::MAX - 1, 1, 1]);
        let rep = anonymity_check_tolerant(&g, &knowledge, 2, 5);
        // No vertex can reach a degree anywhere near u32::MAX → zero
        // entropy → exposed.
        assert!(rep.unobfuscated.contains(&0));
        assert!(rep.unobfuscated.contains(&1));
        assert_eq!(rep.entropy_by_omega[&u32::MAX], 0.0);
        // The degree-1 class is untouched by the huge targets.
        assert!(rep.entropy_by_omega[&1] > 0.9);
        // Maximal tolerance must also saturate, in both directions.
        let rep = anonymity_check_tolerant(&g, &knowledge, 2, u32::MAX);
        // Window [0, ∞) ⊇ every pmf → total mass 1 per vertex → uniform.
        assert!((rep.entropy_by_omega[&u32::MAX] - 2.0).abs() < 1e-12);
        assert_eq!(rep.eps_hat, 0.0);
    }

    #[test]
    fn window_clamping_is_bit_identical_to_padded_sums() {
        // The clamped window sum must match the unclamped definition
        // (zero-padded past the pmf support) bit for bit.
        let mut g = UncertainGraph::with_nodes(8);
        for v in 1..8u32 {
            g.add_edge(0, v, 0.3 + 0.07 * v as f64).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        for tol in [0u32, 1, 3, 100] {
            let rep = anonymity_check_tolerant(&g, &knowledge, 3, tol);
            for (&omega, &h) in &rep.entropy_by_omega {
                let lo = (omega as usize).saturating_sub(tol as usize);
                let hi = (omega as usize).saturating_add(tol as usize);
                let omega_max =
                    knowledge.targets().iter().copied().max().unwrap() as usize + tol as usize;
                let weights: Vec<f64> = (0..8u32)
                    .map(|u| {
                        let pmf = chameleon_stats::poisson_binomial::pmf_truncated(
                            &g.incident_probs(u),
                            omega_max,
                        );
                        (lo..=hi).map(|w| pmf.get(w).copied().unwrap_or(0.0)).sum()
                    })
                    .collect();
                let expect = chameleon_stats::shannon_entropy_bits(&weights);
                assert_eq!(h.to_bits(), expect.to_bits(), "omega={omega} tol={tol}");
            }
        }
    }

    #[test]
    fn cached_check_is_bit_identical_to_direct() {
        let mut g = UncertainGraph::with_nodes(12);
        for v in 1..12u32 {
            g.add_edge(0, v, 0.5).unwrap();
            g.add_edge(v, (v % 11) + 1, 0.35).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let cache = DegreePmfCache::build(&g, &knowledge, 2);
        let direct = anonymity_check(&g, &knowledge, 4);
        let cached = anonymity_check_cached(&cache, &knowledge, 4);
        assert_eq!(direct.unobfuscated, cached.unobfuscated);
        assert_eq!(direct.eps_hat.to_bits(), cached.eps_hat.to_bits());
        for (omega, h) in &direct.entropy_by_omega {
            assert_eq!(h.to_bits(), cached.entropy_by_omega[omega].to_bits());
        }
    }

    #[test]
    fn cache_refresh_tracks_edge_perturbations() {
        let mut g = UncertainGraph::with_nodes(10);
        for v in 1..10u32 {
            g.add_edge(0, v, 0.4).unwrap();
        }
        g.add_edge(3, 7, 0.9).unwrap();
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let mut cache = DegreePmfCache::build(&g, &knowledge, 1);
        // Perturb two edges; only their endpoints go dirty.
        g.set_prob(2, 0.95).unwrap(); // edge (0,3)
        let last = g.num_edges() - 1; // edge (3,7)
        g.set_prob(last as u32, 0.05).unwrap();
        cache.refresh(&g, &[0, 3, 7]);
        let direct = anonymity_check(&g, &knowledge, 3);
        let cached = anonymity_check_cached(&cache, &knowledge, 3);
        assert_eq!(direct.unobfuscated, cached.unobfuscated);
        for (omega, h) in &direct.entropy_by_omega {
            assert_eq!(h.to_bits(), cached.entropy_by_omega[omega].to_bits());
        }
        // set_from_probs with the adjacency-order sequence is the same as
        // a graph refresh.
        let mut cache2 = cache.clone();
        g.set_prob(2, 0.11).unwrap();
        cache.refresh(&g, &[0, 3]);
        cache2.set_from_probs(0, &g.incident_probs(0));
        cache2.set_from_probs(3, &g.incident_probs(3));
        let a = anonymity_check_cached(&cache, &knowledge, 3);
        let b = anonymity_check_cached(&cache2, &knowledge, 3);
        assert_eq!(a.unobfuscated, b.unobfuscated);
        assert_eq!(a.eps_hat.to_bits(), b.eps_hat.to_bits());
    }

    #[test]
    #[should_panic(expected = "cache truncated at")]
    fn cached_check_rejects_stale_cap() {
        let g = matching(2, 0.5);
        let knowledge = AdversaryKnowledge::from_values(vec![1, 1, 1, 1]);
        let cache = DegreePmfCache::build(&g, &knowledge, 1);
        let wider = AdversaryKnowledge::from_values(vec![9, 1, 1, 1]);
        let _ = anonymity_check_cached(&cache, &wider, 2);
    }

    #[test]
    fn adding_uncertainty_blends_adjacent_degrees() {
        // Path 0-1-2-3. Deterministic: Y_1 = uniform over the two endpoints
        // → H = 1 bit. With p = 0.5 everywhere, every vertex has
        // Pr[deg = 1] = 0.5 → Y_1 uniform over all four → H = 2 bits.
        let build = |p: f64| {
            let mut g = UncertainGraph::with_nodes(4);
            g.add_edge(0, 1, p).unwrap();
            g.add_edge(1, 2, p).unwrap();
            g.add_edge(2, 3, p).unwrap();
            g
        };
        let det = build(1.0);
        let fuzz = build(0.5);
        let knowledge = AdversaryKnowledge::structural_degrees(&det);
        let h_det = anonymity_check(&det, &knowledge, 2).entropy_by_omega[&1];
        let h_fuzz = anonymity_check(&fuzz, &knowledge, 2).entropy_by_omega[&1];
        assert!((h_det - 1.0).abs() < 1e-12, "h_det={h_det}");
        assert!((h_fuzz - 2.0).abs() < 1e-12, "h_fuzz={h_fuzz}");
    }
}
