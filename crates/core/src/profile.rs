//! Privacy profile of a (candidate) release: per-vertex obfuscation
//! entropies, effective anonymity-set sizes, and the largest k the release
//! supports at each tolerance — a release-auditing companion to the binary
//! pass/fail [`crate::anonymity_check`].

use crate::anonymity::AdversaryKnowledge;
use chameleon_stats::poisson_binomial::pmf_truncated;
use chameleon_stats::shannon_entropy_bits;
use chameleon_ugraph::{NodeId, UncertainGraph};

/// Per-vertex privacy diagnostics for one published graph.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivacyProfile {
    /// Entropy (bits) of the adversary posterior for each vertex's
    /// property value.
    pub entropy_bits: Vec<f64>,
}

impl PrivacyProfile {
    /// Computes the profile of `published` against degree knowledge of the
    /// original graph.
    ///
    /// # Panics
    /// Panics if `knowledge` does not cover `published`'s vertex set.
    pub fn compute(published: &UncertainGraph, knowledge: &AdversaryKnowledge) -> Self {
        let n = published.num_nodes();
        assert_eq!(knowledge.len(), n, "knowledge must cover every vertex");
        let omega_max = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
        let pmfs: Vec<Vec<f64>> = (0..n as u32)
            .map(|v| pmf_truncated(&published.incident_probs(v), omega_max))
            .collect();
        let mut cache: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut weights = vec![0.0; n];
        let mut entropy_bits = Vec::with_capacity(n);
        for v in 0..n as u32 {
            let omega = knowledge.target(v);
            let h = *cache.entry(omega).or_insert_with(|| {
                let w = omega as usize;
                for (u, pmf) in pmfs.iter().enumerate() {
                    weights[u] = pmf.get(w).copied().unwrap_or(0.0);
                }
                shannon_entropy_bits(&weights)
            });
            entropy_bits.push(h);
        }
        Self { entropy_bits }
    }

    /// Effective anonymity-set size `2^H` per vertex.
    pub fn effective_anonymity(&self) -> Vec<f64> {
        self.entropy_bits.iter().map(|h| h.exp2()).collect()
    }

    /// The number of vertices k-obfuscated at level `k`.
    pub fn obfuscated_at(&self, k: usize) -> usize {
        assert!(k >= 1);
        let t = (k as f64).log2();
        self.entropy_bits.iter().filter(|&&h| h >= t).count()
    }

    /// The largest integer k such that the release is (k, ε)-obf at
    /// tolerance `epsilon` (0 when even k = 1 fails, which cannot happen
    /// since H ≥ 0 = log₂ 1).
    pub fn max_k_at(&self, epsilon: f64) -> usize {
        assert!((0.0..=1.0).contains(&epsilon), "invalid tolerance");
        let n = self.entropy_bits.len();
        if n == 0 {
            return 1;
        }
        let allowed = (epsilon * n as f64).floor() as usize;
        // The binding entropy is the (allowed+1)-th smallest.
        let mut sorted = self.entropy_bits.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let binding = sorted[allowed.min(n - 1)];
        // Largest k with log2(k) <= binding, i.e. k = floor(2^binding).
        let k = binding.exp2().floor();
        (k as usize).max(1)
    }

    /// The `count` least-protected vertices, ascending by entropy.
    pub fn weakest(&self, count: usize) -> Vec<(NodeId, f64)> {
        let mut order: Vec<(NodeId, f64)> = self
            .entropy_bits
            .iter()
            .enumerate()
            .map(|(v, &h)| (v as NodeId, h))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        order.truncate(count);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymity::anonymity_check;

    fn matching(pairs: usize, p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(2 * pairs);
        for i in 0..pairs as u32 {
            g.add_edge(2 * i, 2 * i + 1, p).unwrap();
        }
        g
    }

    #[test]
    fn symmetric_graph_uniform_profile() {
        let g = matching(4, 0.5);
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let profile = PrivacyProfile::compute(&g, &knowledge);
        for &h in &profile.entropy_bits {
            assert!((h - 3.0).abs() < 1e-9); // log2(8)
        }
        let eff = profile.effective_anonymity();
        assert!((eff[0] - 8.0).abs() < 1e-6);
        assert_eq!(profile.obfuscated_at(8), 8);
        assert_eq!(profile.obfuscated_at(9), 0);
        assert_eq!(profile.max_k_at(0.0), 8);
    }

    #[test]
    fn profile_consistent_with_anonymity_check() {
        let mut g = UncertainGraph::with_nodes(7);
        for v in 1..7u32 {
            g.add_edge(0, v, 0.6).unwrap();
        }
        g.add_edge(1, 2, 0.4).unwrap();
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let profile = PrivacyProfile::compute(&g, &knowledge);
        for k in [2usize, 3, 5, 8] {
            let report = anonymity_check(&g, &knowledge, k);
            assert_eq!(
                profile.obfuscated_at(k),
                7 - report.unobfuscated.len(),
                "k={k}"
            );
        }
    }

    #[test]
    fn max_k_respects_tolerance() {
        // Hub exposed (entropy 0), leaves share entropy log2(5).
        let mut g = UncertainGraph::with_nodes(6);
        for v in 1..6u32 {
            g.add_edge(0, v, 1.0).unwrap();
        }
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let profile = PrivacyProfile::compute(&g, &knowledge);
        // With no tolerance, the hub's H = 0 binds → k = 1.
        assert_eq!(profile.max_k_at(0.0), 1);
        // Allowing one skipped vertex (1/6 < 0.17): the leaves' H = log2 5.
        assert_eq!(profile.max_k_at(0.17), 5);
    }

    #[test]
    fn weakest_orders_by_entropy() {
        let mut g = UncertainGraph::with_nodes(5);
        for v in 1..5u32 {
            g.add_edge(0, v, 1.0).unwrap();
        }
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let profile = PrivacyProfile::compute(&g, &knowledge);
        let weakest = profile.weakest(2);
        assert_eq!(weakest[0].0, 0); // the hub
        assert!(weakest[0].1 <= weakest[1].1);
        assert_eq!(profile.weakest(100).len(), 5);
    }

    #[test]
    fn empty_graph_profile() {
        let g = UncertainGraph::with_nodes(0);
        let knowledge = AdversaryKnowledge::from_values(vec![]);
        let profile = PrivacyProfile::compute(&g, &knowledge);
        assert!(profile.entropy_bits.is_empty());
        assert_eq!(profile.max_k_at(0.5), 1);
    }
}
