//! Candidate-edge selection (paper Algorithm 3, lines 9–16).
//!
//! The perturbation set `E_C` starts as the full edge set `E`. Vertices
//! `u, v ∈ V \ H` are then drawn repeatedly from the selection distribution
//! `Q`; if `(u, v)` is an existing edge it is *removed* from `E_C` with
//! probability `p(e)` (strongly-present edges are spared), otherwise the
//! absent edge is *added* (a fresh uncertain edge will be injected). The
//! loop stops when `|E_C| = c·|E|`; since random pairs in a sparse graph
//! are almost surely non-edges, the set grows quickly and retains most of
//! `E` (the paper notes exactly this).

use chameleon_ugraph::{EdgeId, NodeId, UncertainGraph};
use rand::Rng;
use std::collections::HashSet;

/// One candidate for perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateEdge {
    /// Smaller endpoint.
    pub u: NodeId,
    /// Larger endpoint.
    pub v: NodeId,
    /// The existing edge id, or `None` for a newly injected edge.
    pub existing: Option<EdgeId>,
    /// Current probability (0 for injected edges).
    pub p: f64,
}

/// Weighted vertex sampler over `V \ H` with probabilities ∝ `Q^v`.
#[derive(Debug, Clone)]
pub struct VertexSampler {
    nodes: Vec<NodeId>,
    cumulative: Vec<f64>,
    total: f64,
}

impl VertexSampler {
    /// Builds a sampler over the vertices NOT in `excluded`, weighting
    /// vertex `v` by `weights[v]` (must be non-negative; all-zero weights
    /// fall back to uniform).
    ///
    /// # Panics
    /// Panics if every vertex is excluded or `weights` is empty.
    pub fn new(weights: &[f64], excluded: &HashSet<NodeId>) -> Self {
        let mut nodes = Vec::new();
        let mut cumulative = Vec::new();
        let mut total = 0.0;
        for (v, &w) in weights.iter().enumerate() {
            let v = v as NodeId;
            if excluded.contains(&v) {
                continue;
            }
            debug_assert!(w >= 0.0 && w.is_finite(), "bad weight {w}");
            nodes.push(v);
            total += w;
            cumulative.push(total);
        }
        assert!(!nodes.is_empty(), "no candidate vertices remain");
        if total <= 0.0 {
            // Uniform fallback.
            total = nodes.len() as f64;
            for (i, c) in cumulative.iter_mut().enumerate() {
                *c = (i + 1) as f64;
            }
        }
        Self {
            nodes,
            cumulative,
            total,
        }
    }

    /// Number of sampleable vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no vertices are available (cannot occur post-construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Draws one vertex.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let x = rng.gen::<f64>() * self.total;
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) | Err(i) => i.min(self.nodes.len() - 1),
        };
        self.nodes[idx]
    }
}

/// Builds the candidate set `E_C` (paper Algorithm 3 lines 9–16).
///
/// `target_size = c·|E|` rounded; the loop is capped at a generous attempt
/// budget so adversarial weight configurations cannot hang (on budget
/// exhaustion the current set is returned — the algorithm is randomized
/// anyway and GenObf copes with any candidate set).
pub fn select_candidates<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    sampler: &VertexSampler,
    size_multiplier: f64,
    rng: &mut R,
) -> Vec<CandidateEdge> {
    let m = graph.num_edges();
    let n = graph.num_nodes();
    let target = ((m as f64 * size_multiplier).round() as usize)
        .min(n * n.saturating_sub(1) / 2)
        .max(1.min(m));
    // E_C ← E
    let mut members: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(target * 2);
    let mut removed: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut added: Vec<(NodeId, NodeId)> = Vec::new();
    for e in graph.edges() {
        members.insert((e.u, e.v));
    }
    let attempt_budget = 200 * target + 10_000;
    let mut attempts = 0usize;
    while members.len() != target && attempts < attempt_budget {
        attempts += 1;
        let a = sampler.sample(rng);
        let b = sampler.sample(rng);
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if let Some(e) = graph.find_edge(a, b) {
            // Existing edge: drop from E_C with probability p(e).
            if members.contains(&key) && rng.gen::<f64>() < graph.prob(e) {
                members.remove(&key);
                removed.insert(key);
            }
        } else if members.len() < target && !members.contains(&key) {
            members.insert(key);
            added.push(key);
        }
    }
    chameleon_obs::counter!("genobf.candidate_attempts").add(attempts as u64);
    // Deterministic output order: original edges first (by id), then added
    // pairs in insertion order.
    let mut out = Vec::with_capacity(members.len());
    for (id, e) in graph.edges().iter().enumerate() {
        if members.contains(&(e.u, e.v)) {
            out.push(CandidateEdge {
                u: e.u,
                v: e.v,
                existing: Some(id as EdgeId),
                p: e.p,
            });
        }
    }
    for &(u, v) in &added {
        if members.contains(&(u, v)) {
            out.push(CandidateEdge {
                u,
                v,
                existing: None,
                p: 0.0,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_ugraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler_uniform(n: usize) -> VertexSampler {
        VertexSampler::new(&vec![1.0; n], &HashSet::new())
    }

    #[test]
    fn sampler_respects_weights() {
        let weights = vec![0.0, 10.0, 0.0, 0.0];
        let s = VertexSampler::new(&weights, &HashSet::new());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sampler_excludes_h() {
        let weights = vec![1.0; 5];
        let excluded: HashSet<NodeId> = [0u32, 2].into_iter().collect();
        let s = VertexSampler::new(&weights, &excluded);
        assert_eq!(s.len(), 3);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!(!excluded.contains(&v));
        }
    }

    #[test]
    fn sampler_zero_weights_fall_back_to_uniform() {
        let s = VertexSampler::new(&[0.0, 0.0, 0.0], &HashSet::new());
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sampler_weight_proportionality() {
        let s = VertexSampler::new(&[1.0, 3.0], &HashSet::new());
        let mut rng = StdRng::seed_from_u64(3);
        let n = 8000;
        let ones = (0..n).filter(|_| s.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "frac={frac}");
    }

    #[test]
    #[should_panic]
    fn sampler_rejects_total_exclusion() {
        let excluded: HashSet<NodeId> = [0u32, 1].into_iter().collect();
        let _ = VertexSampler::new(&[1.0, 1.0], &excluded);
    }

    #[test]
    fn candidates_reach_target_size() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::gnm(40, 60, &mut rng);
        let s = sampler_uniform(40);
        let cands = select_candidates(&g, &s, 2.0, &mut rng);
        assert_eq!(cands.len(), 120);
    }

    #[test]
    fn candidates_mostly_retain_original_edges() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::gnm(60, 80, &mut rng);
        let s = sampler_uniform(60);
        let cands = select_candidates(&g, &s, 2.0, &mut rng);
        let existing = cands.iter().filter(|c| c.existing.is_some()).count();
        // "the resulting set E_c includes most of edges in E"
        assert!(existing as f64 > 0.8 * 80.0, "existing={existing}");
    }

    #[test]
    fn injected_candidates_have_zero_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::gnm(30, 40, &mut rng);
        let s = sampler_uniform(30);
        let cands = select_candidates(&g, &s, 1.5, &mut rng);
        for c in cands.iter().filter(|c| c.existing.is_none()) {
            assert_eq!(c.p, 0.0);
            assert!(!g.has_edge(c.u, c.v));
            assert!(c.u < c.v);
        }
    }

    #[test]
    fn shrinking_multiplier_below_one() {
        // c < 1: E_C must shrink below |E| by removing existing edges.
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = generators::gnm(20, 40, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, 0.9).unwrap(); // high p → removals frequent
        }
        let s = sampler_uniform(20);
        let cands = select_candidates(&g, &s, 0.5, &mut rng);
        assert_eq!(cands.len(), 20);
        assert!(cands.iter().all(|c| c.existing.is_some()));
    }

    #[test]
    fn candidates_have_no_duplicates() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = generators::gnm(25, 30, &mut rng);
        let s = sampler_uniform(25);
        let cands = select_candidates(&g, &s, 3.0, &mut rng);
        let set: HashSet<(u32, u32)> = cands.iter().map(|c| (c.u, c.v)).collect();
        assert_eq!(set.len(), cands.len());
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng_g = StdRng::seed_from_u64(9);
        let g = generators::gnm(25, 30, &mut rng_g);
        let s = sampler_uniform(25);
        let a = select_candidates(&g, &s, 2.0, &mut StdRng::seed_from_u64(10));
        let b = select_candidates(&g, &s, 2.0, &mut StdRng::seed_from_u64(10));
        assert_eq!(a, b);
    }

    #[test]
    fn high_weight_vertices_attract_injections() {
        // Nodes 0 and 1 carry nearly all the weight: injected edges should
        // overwhelmingly touch them.
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::gnm(30, 20, &mut rng);
        let mut weights = vec![0.01; 30];
        weights[0] = 100.0;
        weights[1] = 100.0;
        let s = VertexSampler::new(&weights, &HashSet::new());
        let cands = select_candidates(&g, &s, 2.0, &mut rng);
        let injected: Vec<_> = cands.iter().filter(|c| c.existing.is_none()).collect();
        assert!(!injected.is_empty());
        let touching = injected.iter().filter(|c| c.u <= 1 || c.v <= 1).count();
        assert!(
            touching as f64 > 0.9 * injected.len() as f64,
            "{touching}/{}",
            injected.len()
        );
    }
}
