//! Checkpointing of the GenObf σ search (durability layer, DESIGN.md §11).
//!
//! The σ search of [`crate::Chameleon::anonymize`] is a deterministic
//! function of `(graph, config, method, seed)`: every probe draws its
//! randomness from the indexed stream `(seed, "genobf-trial", call, trial)`
//! (DESIGN.md §6d), so the *entire* trajectory — which σ values are probed,
//! in which order, and what each probe observes — is replayable from the
//! per-probe outcomes alone. A [`SearchCheckpoint`] is exactly that record:
//! the search fingerprint (seed, method, graph digest and every
//! search-relevant config knob, folded into one FNV-1a value) plus one
//! [`ProbeRecord`] per completed GenObf invocation, carrying the RNG-stream
//! cursor (`call`), the probed σ, and the observed ε̂ values as exact bits.
//!
//! A resumed search walks the same control flow but *consumes* the recorded
//! probes instead of recomputing them: brackets, the σ trace and the call
//! counter advance from the records, and only probes beyond the checkpoint
//! run GenObf. Because the winning probe's graph is a pure function of
//! `(call, σ)`, it is re-materialized with a single extra GenObf evaluation
//! when the winner lies inside the replayed prefix — the final output is
//! bit-identical to an uninterrupted run (pinned by
//! `tests/checkpoint_resume.rs` at every interrupt point).
//!
//! Serialization is the workspace's deterministic JSON with every `f64`
//! stored as its IEEE-754 bit pattern in hex — round-tripping is exact by
//! construction, never "close after parsing".

use crate::config::ChameleonConfig;
use crate::method::Method;
use chameleon_obs::json::{self, Json};
use chameleon_ugraph::UncertainGraph;
use std::fmt::Write as _;
use std::sync::Arc;

/// Current serialization version; bumped if the record shape changes.
const CHECKPOINT_VERSION: u64 = 1;

/// One completed GenObf invocation of a σ search.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// RNG-stream cursor: this probe consumed the trial streams
    /// `(seed, "genobf-trial", call, 0..trials)` (DESIGN.md §6d). The
    /// next live probe after a replayed prefix continues at `call + 1`.
    pub call: u64,
    /// The probed noise level σ (exact bits round-trip through
    /// serialization).
    pub sigma: f64,
    /// ε̂ of the probe's winning trial, or 1.0 when no trial passed.
    pub eps_hat: f64,
    /// Smallest ε̂ observed across the probe's trials (diagnostics; feeds
    /// the σ trace and the near-miss report).
    pub eps_nearest: f64,
    /// Whether the probe produced a (k, ε)-satisfying graph — the bit the
    /// bracket update logic branches on.
    pub passed: bool,
}

/// A serializable snapshot of a σ search taken at a probe boundary.
///
/// Emitted through [`CheckpointHook`] after every *live* probe; feeding it
/// back via [`ChameleonConfig::resume_from`] skips the recorded probes.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchCheckpoint {
    /// FNV-1a fold of everything that pins the search trajectory: the
    /// graph digest, method, seed and every search-relevant config knob.
    /// A resume whose fingerprint does not match the live search is
    /// rejected ([`crate::ChameleonError::CheckpointInvalid`]).
    pub fingerprint: u64,
    /// The seed driving all randomness (informational; already folded
    /// into the fingerprint).
    pub seed: u64,
    /// Every completed probe, in call order.
    pub probes: Vec<ProbeRecord>,
}

impl SearchCheckpoint {
    /// Serializes to one line of deterministic JSON (floats as hex bit
    /// patterns, u64s as hex strings — exact round-trip).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.probes.len() * 96);
        let _ = write!(
            out,
            "{{\"v\":{CHECKPOINT_VERSION},\"fingerprint\":\"{:016x}\",\"seed\":\"{:016x}\",\"probes\":[",
            self.fingerprint, self.seed
        );
        for (i, p) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"call\":{},\"sigma\":\"{:016x}\",\"eps_hat\":\"{:016x}\",\
                 \"eps_nearest\":\"{:016x}\",\"passed\":{}}}",
                p.call,
                p.sigma.to_bits(),
                p.eps_hat.to_bits(),
                p.eps_nearest.to_bits(),
                p.passed,
            );
        }
        out.push_str("]}");
        out
    }

    /// Parses a serialized checkpoint.
    ///
    /// # Errors
    /// Returns a description of the first malformed field. Parsing is
    /// strict about shape but does not validate the trajectory — that
    /// happens against the live search via the fingerprint and per-probe
    /// cursor checks.
    pub fn parse(text: &str) -> Result<SearchCheckpoint, String> {
        let v = Json::parse(text).map_err(|e| format!("checkpoint: {e}"))?;
        let version = v
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!("checkpoint: unsupported version {version}"));
        }
        let fingerprint = hex_u64(&v, "fingerprint")?;
        let seed = hex_u64(&v, "seed")?;
        let probes = v
            .get("probes")
            .and_then(Json::as_array)
            .ok_or("checkpoint: missing probes array")?
            .iter()
            .map(|p| {
                Ok(ProbeRecord {
                    call: p
                        .get("call")
                        .and_then(Json::as_u64)
                        .ok_or("checkpoint probe: missing call")?,
                    sigma: f64::from_bits(hex_u64(p, "sigma")?),
                    eps_hat: f64::from_bits(hex_u64(p, "eps_hat")?),
                    eps_nearest: f64::from_bits(hex_u64(p, "eps_nearest")?),
                    passed: p
                        .get("passed")
                        .and_then(Json::as_bool)
                        .ok_or("checkpoint probe: missing passed")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SearchCheckpoint {
            fingerprint,
            seed,
            probes,
        })
    }

    /// Whether this checkpoint belongs to the search defined by
    /// `(graph, method, seed, config)` — callers that recover persisted
    /// checkpoints (e.g. a job journal) use this to drop stale state and
    /// fall back to a fresh search instead of failing.
    pub fn matches(
        &self,
        graph: &UncertainGraph,
        method: Method,
        seed: u64,
        config: &ChameleonConfig,
    ) -> bool {
        self.fingerprint == search_fingerprint(graph_fingerprint(graph), method, seed, config)
    }
}

/// Receives checkpoints as a σ search progresses. Implemented for any
/// `Fn(&SearchCheckpoint)` via [`CheckpointHook::new`].
pub trait CheckpointSink: Send + Sync {
    /// Called after every live probe with the cumulative checkpoint. The
    /// call happens on the search's thread between probes — keep it
    /// cheap (serialize + hand off); it must not feed randomness back.
    fn checkpoint(&self, checkpoint: &SearchCheckpoint);
}

impl<F: Fn(&SearchCheckpoint) + Send + Sync> CheckpointSink for F {
    fn checkpoint(&self, checkpoint: &SearchCheckpoint) {
        self(checkpoint);
    }
}

/// A cloneable handle to a [`CheckpointSink`], carried on
/// [`ChameleonConfig::checkpoint`]. Equality is handle identity
/// (`Arc::ptr_eq`) so the config keeps its derived `PartialEq`; the sink
/// itself never participates in result bytes.
#[derive(Clone)]
pub struct CheckpointHook(Arc<dyn CheckpointSink>);

impl CheckpointHook {
    /// Wraps a closure (or any sink) into a hook.
    pub fn new<F: Fn(&SearchCheckpoint) + Send + Sync + 'static>(sink: F) -> Self {
        CheckpointHook(Arc::new(sink))
    }

    /// Wraps an existing shared sink.
    pub fn from_sink(sink: Arc<dyn CheckpointSink>) -> Self {
        CheckpointHook(sink)
    }

    /// Delivers one checkpoint to the sink.
    pub fn emit(&self, checkpoint: &SearchCheckpoint) {
        self.0.checkpoint(checkpoint);
    }
}

impl std::fmt::Debug for CheckpointHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CheckpointHook(..)")
    }
}

impl PartialEq for CheckpointHook {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// FNV-1a 64-bit (same parameters as the server's cache digest; duplicated
/// here because `chameleon_core` sits below the server crate).
fn fnv1a64(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Content digest of an uncertain graph: node count plus every edge's
/// endpoints and exact probability bits, in storage order.
pub fn graph_fingerprint(graph: &UncertainGraph) -> u64 {
    let mut h = fnv1a64(&(graph.num_nodes() as u64).to_le_bytes(), FNV_OFFSET);
    for e in graph.edges() {
        h = fnv1a64(&e.u.to_le_bytes(), h);
        h = fnv1a64(&e.v.to_le_bytes(), h);
        h = fnv1a64(&e.p.to_bits().to_le_bytes(), h);
    }
    h
}

/// Folds everything that pins a σ-search trajectory into one value: the
/// graph digest, the method, the seed, and each config knob the search
/// consults. `num_threads` is deliberately excluded (results are
/// thread-count invariant); the durability hooks themselves are excluded
/// (they observe the search, they do not steer it).
pub fn search_fingerprint(
    graph_digest: u64,
    method: Method,
    seed: u64,
    config: &ChameleonConfig,
) -> u64 {
    let mut canon = String::with_capacity(160);
    let _ = write!(
        canon,
        "g={graph_digest:016x};m={};seed={seed};k={};eps={:016x};c={:016x};q={:016x};t={};N={};\
         s0={:016x};tol={:016x};d={};bw={:016x};inc={}",
        method.name(),
        config.k,
        config.epsilon.to_bits(),
        config.size_multiplier.to_bits(),
        config.white_noise.to_bits(),
        config.trials,
        config.num_world_samples,
        config.sigma_init.to_bits(),
        config.sigma_tolerance.to_bits(),
        config.max_doublings,
        config.bandwidth_scale.to_bits(),
        config.incremental,
    );
    fnv1a64(canon.as_bytes(), FNV_OFFSET)
}

fn hex_u64(v: &Json, key: &str) -> Result<u64, String> {
    let s = v
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("checkpoint: missing {key}"))?;
    u64::from_str_radix(s, 16).map_err(|e| format!("checkpoint: bad {key} {s:?}: {e}"))
}

/// Re-escapes a checkpoint for embedding as a JSON string field (journal
/// records store checkpoints opaquely; this keeps the quoting in one
/// place next to the format definition).
pub fn to_json_string_field(checkpoint: &SearchCheckpoint) -> String {
    json::string(&checkpoint.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SearchCheckpoint {
        SearchCheckpoint {
            fingerprint: 0xdead_beef_0123_4567,
            seed: u64::MAX - 3,
            probes: vec![
                ProbeRecord {
                    call: 0,
                    sigma: 1.0,
                    eps_hat: 1.0,
                    eps_nearest: 0.62,
                    passed: false,
                },
                ProbeRecord {
                    call: 1,
                    sigma: 2.0,
                    eps_hat: 0.012_345_678_901_234_5,
                    eps_nearest: 0.012_345_678_901_234_5,
                    passed: true,
                },
            ],
        }
    }

    #[test]
    fn serialization_round_trips_exactly() {
        let cp = sample();
        let parsed = SearchCheckpoint::parse(&cp.to_json()).unwrap();
        assert_eq!(cp, parsed);
        // Bit-exactness, not approximate equality.
        for (a, b) in cp.probes.iter().zip(&parsed.probes) {
            assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
            assert_eq!(a.eps_hat.to_bits(), b.eps_hat.to_bits());
            assert_eq!(a.eps_nearest.to_bits(), b.eps_nearest.to_bits());
        }
    }

    #[test]
    fn extreme_floats_survive() {
        let mut cp = sample();
        cp.probes[0].sigma = f64::MIN_POSITIVE;
        cp.probes[0].eps_hat = f64::from_bits(0x0000_0000_0000_0001);
        cp.probes[0].eps_nearest = 1.0 - f64::EPSILON;
        let parsed = SearchCheckpoint::parse(&cp.to_json()).unwrap();
        assert_eq!(cp, parsed);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "",
            "{}",
            "not json",
            r#"{"v":1}"#,
            r#"{"v":2,"fingerprint":"0","seed":"0","probes":[]}"#,
            r#"{"v":1,"fingerprint":"zzz","seed":"0","probes":[]}"#,
            r#"{"v":1,"fingerprint":"0","seed":"0","probes":[{"call":0}]}"#,
        ] {
            assert!(SearchCheckpoint::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn fingerprint_tracks_every_knob() {
        let g = {
            let mut g = UncertainGraph::with_nodes(4);
            g.add_edge(0, 1, 0.5).unwrap();
            g.add_edge(1, 2, 0.25).unwrap();
            g
        };
        let cfg = ChameleonConfig::default();
        let base = search_fingerprint(graph_fingerprint(&g), Method::Rsme, 7, &cfg);
        assert_eq!(
            base,
            search_fingerprint(graph_fingerprint(&g), Method::Rsme, 7, &cfg)
        );
        let mut other = cfg.clone();
        other.k += 1;
        assert_ne!(
            base,
            search_fingerprint(graph_fingerprint(&g), Method::Rsme, 7, &other)
        );
        assert_ne!(
            base,
            search_fingerprint(graph_fingerprint(&g), Method::Me, 7, &cfg)
        );
        assert_ne!(
            base,
            search_fingerprint(graph_fingerprint(&g), Method::Rsme, 8, &cfg)
        );
        // Thread count is excluded: results are thread-count invariant.
        let mut threaded = cfg.clone();
        threaded.num_threads = 8;
        assert_eq!(
            base,
            search_fingerprint(graph_fingerprint(&g), Method::Rsme, 7, &threaded)
        );
        // Graph content matters down to probability bits.
        let mut g2 = g.clone();
        g2.set_prob(0, 0.5 + f64::EPSILON).unwrap();
        assert_ne!(graph_fingerprint(&g), graph_fingerprint(&g2));
    }

    #[test]
    fn hook_equality_is_identity() {
        let a = CheckpointHook::new(|_: &SearchCheckpoint| {});
        let b = CheckpointHook::new(|_: &SearchCheckpoint| {});
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
    }

    #[test]
    fn string_field_embedding_round_trips() {
        let cp = sample();
        let field = to_json_string_field(&cp);
        let unquoted = Json::parse(&field).unwrap();
        let inner = unquoted.as_str().unwrap();
        assert_eq!(SearchCheckpoint::parse(inner).unwrap(), cp);
    }
}
