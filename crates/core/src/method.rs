//! The method variants compared in the paper's evaluation (Table II).
//!
//! | Method | Uncertainty-aware | Reliability-oriented | Anonymity-oriented |
//! |--------|-------------------|----------------------|--------------------|
//! | Rep-An | —                 | —                    | ✓                  |
//! | RSME   | ✓                 | ✓                    | ✓                  |
//! | ME     | ✓                 | —                    | ✓                  |
//! | RS     | ✓                 | ✓                    | —                  |
//!
//! *Reliability-oriented* means edge selection down-weights vertices with
//! high reliability relevance (VRR) so that perturbation avoids
//! structurally critical edges. *Anonymity-oriented* means the max-entropy
//! perturbation rule `p̃ = p + (1−2p)·r` steers noise toward the
//! entropy-increasing direction (paper §V-F). The Rep-An baseline lives in
//! the `chameleon-baseline` crate; it is uncertainty-*unaware*.

use crate::perturb::PerturbStrategy;

/// Chameleon method variant (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Full Chameleon: reliability-sensitive selection + max-entropy
    /// perturbation.
    Rsme,
    /// Reliability-sensitive selection with *unguided* (random-direction)
    /// perturbation.
    Rs,
    /// Uniqueness-only selection with max-entropy perturbation.
    Me,
}

impl Method {
    /// All variants, in the paper's reporting order.
    pub const ALL: [Method; 3] = [Method::Rsme, Method::Rs, Method::Me];

    /// True when edge selection is guided by reliability relevance (the
    /// "Reliability-oriented" column).
    pub fn reliability_oriented(&self) -> bool {
        matches!(self, Method::Rsme | Method::Rs)
    }

    /// True when perturbation uses the max-entropy rule (the
    /// "Anonymity-oriented" column).
    pub fn anonymity_oriented(&self) -> bool {
        matches!(self, Method::Rsme | Method::Me)
    }

    /// The perturbation strategy this variant applies.
    pub fn perturbation(&self) -> PerturbStrategy {
        if self.anonymity_oriented() {
            PerturbStrategy::MaxEntropy
        } else {
            PerturbStrategy::Unguided
        }
    }

    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Rsme => "RSME",
            Method::Rs => "RS",
            Method::Me => "ME",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Method {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "RSME" => Ok(Method::Rsme),
            "RS" => Ok(Method::Rs),
            "ME" => Ok(Method::Me),
            other => Err(format!(
                "unknown method {other:?} (expected RSME, RS or ME)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_capability_matrix() {
        assert!(Method::Rsme.reliability_oriented());
        assert!(Method::Rsme.anonymity_oriented());
        assert!(Method::Rs.reliability_oriented());
        assert!(!Method::Rs.anonymity_oriented());
        assert!(!Method::Me.reliability_oriented());
        assert!(Method::Me.anonymity_oriented());
    }

    #[test]
    fn perturbation_mapping() {
        assert_eq!(Method::Rsme.perturbation(), PerturbStrategy::MaxEntropy);
        assert_eq!(Method::Me.perturbation(), PerturbStrategy::MaxEntropy);
        assert_eq!(Method::Rs.perturbation(), PerturbStrategy::Unguided);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for m in Method::ALL {
            let parsed: Method = m.name().parse().unwrap();
            assert_eq!(parsed, m);
            assert_eq!(format!("{m}"), m.name());
        }
        assert_eq!("rsme".parse::<Method>().unwrap(), Method::Rsme);
        assert!("bogus".parse::<Method>().is_err());
    }
}
