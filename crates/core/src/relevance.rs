//! Reliability relevance (paper §V-D): the sensitivity of the graph's
//! reliability to perturbation of a single edge.
//!
//! By the factorization lemma (Lemma 1),
//! `R_{u,v}(G) = p(e)·[R_{u,v}(G_e) − R_{u,v}(G_ē)] + R_{u,v}(G_ē)` —
//! reliability is *linear* in each individual edge probability — so the
//! edge reliability relevance is
//!
//! ```text
//! ERR^e(G) = Σ_{u,v} |∂R_{u,v}/∂p(e)| = E[cc | e present] − E[cc | e absent]
//! ```
//!
//! the gap in expected connected-pair count between the worlds containing
//! `e` and those missing it. Algorithm 2 estimates ERR for *all* edges from
//! one shared ensemble of N sampled worlds by conditioning on each edge's
//! membership — O(N·α(|V|)·|E|) total instead of the naive O(|E|·N·α·|E|)
//! (Lemma 3 vs Lemma 2).
//!
//! The vertex-level aggregate is `VRR^u = Σ_{e ∋ u} p(e)·ERR^e` — the
//! expected reliability impact of perturbing around `u`.

use chameleon_reliability::{EnsembleStream, WorldEnsemble};
use chameleon_stats::alloc_guard::BudgetExceeded;
use chameleon_stats::parallel;
use chameleon_ugraph::UncertainGraph;
use rand::Rng;

/// Worlds per accumulation chunk for the parallel ERR estimators. Partial
/// sums are computed per chunk and folded in chunk order, so results are
/// bit-identical at any thread count; changing this constant regroups the
/// floating-point accumulation and may shift results by ulps.
///
/// `reliability::STRIP_ALIGN` is the lcm of this and the sampling chunk:
/// strip-streamed folds then replay the same chunk partial sequence as
/// the in-RAM estimators, keeping the streamed ERR vectors bit-identical.
const ERR_WORLD_CHUNK: usize = 64;

/// Estimates `ERR^e` for every edge via the paper-faithful reused-sampling
/// estimator (paper Algorithm 2) over a pre-built ensemble.
///
/// For edge `e` with probability `p`, worlds are partitioned by membership
/// of `e`:
///
/// ```text
/// ERR^e ≈ mean cc over worlds containing e − mean cc over worlds missing e
///       = CC_e / (N·p̂)  −  CC_ē / (N·(1−p̂))           (with p̂ = n_e / N)
/// ```
///
/// Deterministic edges (p ∈ {0, 1}) appear in all or none of the worlds; a
/// conditional mean over an empty stratum is undefined, and we return 0 —
/// perturbing the edge by an infinitesimal amount is impossible in one
/// direction and the algorithm never needs the value (such edges carry no
/// uncertainty budget).
///
/// Note: this estimator differences two conditional means of `cc`, whose
/// world-to-world variance is large on shattered graphs; prefer the
/// coupled [`edge_reliability_relevance`] (same expectation, same cost,
/// far lower variance) outside of Lemma 2/3 benchmarking.
pub fn edge_reliability_relevance_alg2(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
) -> Vec<f64> {
    edge_reliability_relevance_alg2_threads(graph, ensemble, 1)
}

/// [`edge_reliability_relevance_alg2`] on up to `threads` worker threads
/// (`0` = all hardware threads).
///
/// Worlds are accumulated in fixed chunks of worlds whose partial sums are
/// folded in chunk order, so the result is bit-identical for every
/// `threads` value.
pub fn edge_reliability_relevance_alg2_threads(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
    threads: usize,
) -> Vec<f64> {
    let _span = chameleon_obs::span!("relevance.err_alg2");
    let mut accum = ErrAlg2Accum::new(graph);
    accum.fold(ensemble, threads);
    accum.finish()
}

/// Streaming accumulator behind [`edge_reliability_relevance_alg2`]: folds
/// worlds strip by strip, replaying the exact per-chunk partial sequence of
/// the in-RAM estimator.
///
/// Bit-identity contract: strips must arrive in ascending world order and
/// every strip boundary must fall on an [`ERR_WORLD_CHUNK`] multiple
/// (`reliability::STRIP_ALIGN` guarantees this — a ragged *final* strip is
/// fine). Then each chunk's partial sums cover exactly the same worlds as
/// in the in-RAM pass, and the fold adds them in the same order, so
/// [`ErrAlg2Accum::finish`] is bit-for-bit equal to
/// [`edge_reliability_relevance_alg2_threads`].
pub struct ErrAlg2Accum {
    cc_with: Vec<f64>,
    count_with: Vec<u32>,
    cc_total: f64,
    worlds: usize,
}

impl ErrAlg2Accum {
    /// Empty accumulator for `graph`'s edge set.
    pub fn new(graph: &UncertainGraph) -> Self {
        let m = graph.num_edges();
        Self {
            cc_with: vec![0.0f64; m],
            count_with: vec![0u32; m],
            cc_total: 0.0,
            worlds: 0,
        }
    }

    /// Folds one strip of worlds into the running conditional sums.
    pub fn fold(&mut self, strip: &WorldEnsemble, threads: usize) {
        let m = self.cc_with.len();
        chameleon_obs::counter!("relevance.worlds_scanned").add(strip.len() as u64);
        let partials = parallel::map_chunks(strip.len(), ERR_WORLD_CHUNK, threads, |_, range| {
            let mut cc_with = vec![0.0f64; m];
            let mut count_with = vec![0u32; m];
            let mut cc_total = 0.0f64;
            for w in range {
                let world = strip.world(w);
                let cc = strip.connected_pairs(w) as f64;
                cc_total += cc;
                // Walk present edges word-by-word: iterate the set bits of
                // each 64-edge block. Ascending edge order, exactly like the
                // historical per-edge `contains` loop, so the floating-point
                // accumulation order (and thus every bit of the result) is
                // unchanged.
                for (wi, &word) in world.words().iter().enumerate() {
                    let mut x = word;
                    while x != 0 {
                        let e = wi * 64 + x.trailing_zeros() as usize;
                        x &= x - 1;
                        cc_with[e] += cc;
                        count_with[e] += 1;
                    }
                }
            }
            (cc_with, count_with, cc_total)
        });
        for (part_cc_with, part_count, part_total) in partials {
            for e in 0..m {
                self.cc_with[e] += part_cc_with[e];
                self.count_with[e] += part_count[e];
            }
            self.cc_total += part_total;
        }
        self.worlds += strip.len();
    }

    /// Finishes the estimate: per-edge conditional-mean gap, clamped at 0.
    pub fn finish(&self) -> Vec<f64> {
        let m = self.cc_with.len();
        let mut err = Vec::with_capacity(m);
        for e in 0..m {
            let n_e = self.count_with[e];
            let n_not = self.worlds as u32 - n_e;
            if n_e == 0 || n_not == 0 {
                err.push(0.0);
                continue;
            }
            let mean_with = self.cc_with[e] / n_e as f64;
            let mean_without = (self.cc_total - self.cc_with[e]) / n_not as f64;
            // Connectivity is monotone in edge presence, so the true gap is
            // ≥ 0; clamp away sampling noise.
            err.push((mean_with - mean_without).max(0.0));
        }
        err
    }
}

/// Coupled (variance-reduced) ERR estimator — the pipeline default.
///
/// By independence of the edges, coupling `G_e` and `G_ē` on all *other*
/// edges gives the exact identity
///
/// ```text
/// ERR^e = E[cc(G_e)] − E[cc(G_ē)]
///       = E_{w ~ other edges}[ s_u(w)·s_v(w)·1{u,v in different comps} ]
/// ```
///
/// where `s_x(w)` is the size of `x`'s component in `w` without `e`. A
/// sampled world of `G` that happens to lack `e` is distributed exactly as
/// a sample of the other-edge marginal, so the ensemble is reused the same
/// way as in Algorithm 2 — same O(N·|E|) cost — but each term is a
/// *within-world* difference: the huge world-to-world variance of `cc`
/// cancels instead of entering the estimate. Empirically (see the
/// `ablation errsamples` study) the cc-differencing form of Algorithm 2
/// needs orders of magnitude more worlds to rank edges stably; this
/// estimator is unbiased for the same quantity (DESIGN.md §3).
///
/// Edges present in every sampled world (e.g. p = 1) have no usable
/// samples and return 0, matching [`edge_reliability_relevance_alg2`]'s
/// convention for deterministic edges.
pub fn edge_reliability_relevance(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> Vec<f64> {
    edge_reliability_relevance_threads(graph, ensemble, 1)
}

/// [`edge_reliability_relevance`] on up to `threads` worker threads
/// (`0` = all hardware threads).
///
/// Per-edge sums and sample counts are accumulated per fixed chunk of
/// worlds and the partials folded in chunk order, so the result is
/// bit-identical for every `threads` value.
pub fn edge_reliability_relevance_threads(
    graph: &UncertainGraph,
    ensemble: &WorldEnsemble,
    threads: usize,
) -> Vec<f64> {
    let _span = chameleon_obs::span!("relevance.err_coupled");
    let mut accum = ErrCoupledAccum::new(graph);
    accum.fold(ensemble, threads);
    accum.finish()
}

/// Streaming accumulator behind [`edge_reliability_relevance`]: same
/// strip-fold contract as [`ErrAlg2Accum`] (ascending, 64-aligned strips
/// replay the in-RAM chunk partial sequence bit-for-bit).
pub struct ErrCoupledAccum {
    // SoA endpoints: the scan only touches endpoints, never probabilities,
    // so cache lines carry twice the useful data of the `Edge` array.
    us: Vec<u32>,
    vs: Vec<u32>,
    sum: Vec<f64>,
    count: Vec<u32>,
}

impl ErrCoupledAccum {
    /// Empty accumulator for `graph`'s edge set.
    pub fn new(graph: &UncertainGraph) -> Self {
        let m = graph.num_edges();
        let (us, vs) = graph.endpoint_soa();
        Self {
            us,
            vs,
            sum: vec![0.0f64; m],
            count: vec![0u32; m],
        }
    }

    /// Folds one strip of worlds into the running per-edge sums.
    pub fn fold(&mut self, strip: &WorldEnsemble, threads: usize) {
        let m = self.sum.len();
        let (us, vs) = (&self.us, &self.vs);
        chameleon_obs::counter!("relevance.worlds_scanned").add(strip.len() as u64);
        let partials = parallel::map_chunks(strip.len(), ERR_WORLD_CHUNK, threads, |_, range| {
            let mut sum = vec![0.0f64; m];
            let mut count = vec![0u32; m];
            for w in range {
                let world = strip.world(w);
                let labels = strip.labels(w);
                let sizes = strip.component_sizes(w);
                // Walk *absent* edges word-by-word: the set bits of `!word`,
                // masked to the valid tail in the final 64-edge block. The
                // edge order is ascending, identical to the historical
                // per-edge `contains` skip loop, so the accumulation is
                // bit-for-bit unchanged.
                for (wi, &word) in world.words().iter().enumerate() {
                    let base = wi * 64;
                    let width = (m - base).min(64);
                    let mut x = !word;
                    if width < 64 {
                        x &= (1u64 << width) - 1;
                    }
                    while x != 0 {
                        let e = base + x.trailing_zeros() as usize;
                        x &= x - 1;
                        count[e] += 1;
                        let (lu, lv) = (labels[us[e] as usize], labels[vs[e] as usize]);
                        if lu != lv {
                            sum[e] += sizes[lu as usize] as f64 * sizes[lv as usize] as f64;
                        }
                    }
                }
            }
            (sum, count)
        });
        for (part_sum, part_count) in partials {
            for e in 0..m {
                self.sum[e] += part_sum[e];
                self.count[e] += part_count[e];
            }
        }
    }

    /// Finishes the estimate: per-edge conditional mean (0 with no samples).
    pub fn finish(&self) -> Vec<f64> {
        (0..self.sum.len())
            .map(|e| {
                if self.count[e] == 0 {
                    0.0
                } else {
                    self.sum[e] / self.count[e] as f64
                }
            })
            .collect()
    }
}

/// Strip-streamed [`edge_reliability_relevance`]: folds the compressed
/// worlds of an [`EnsembleStream`] strip by strip, never materializing more
/// than one strip of labeled worlds, and returns the *bit-identical* ERR
/// vector the in-RAM estimator would produce on the same `(n, seed)`
/// ensemble.
///
/// # Errors
///
/// Fails if decoding a strip would breach the configured ensemble byte
/// ceiling (`alloc_guard::set_ensemble_limit`).
pub fn edge_reliability_relevance_streamed(
    graph: &UncertainGraph,
    stream: &EnsembleStream<'_>,
    threads: usize,
) -> Result<Vec<f64>, BudgetExceeded> {
    let _span = chameleon_obs::span!("relevance.err_coupled_streamed");
    let mut accum = ErrCoupledAccum::new(graph);
    stream.for_each_strip(|_, strip| accum.fold(strip, threads))?;
    Ok(accum.finish())
}

/// Strip-streamed [`edge_reliability_relevance_alg2`]; same contract as
/// [`edge_reliability_relevance_streamed`].
///
/// # Errors
///
/// Fails if decoding a strip would breach the configured ensemble byte
/// ceiling.
pub fn edge_reliability_relevance_alg2_streamed(
    graph: &UncertainGraph,
    stream: &EnsembleStream<'_>,
    threads: usize,
) -> Result<Vec<f64>, BudgetExceeded> {
    let _span = chameleon_obs::span!("relevance.err_alg2_streamed");
    let mut accum = ErrAlg2Accum::new(graph);
    stream.for_each_strip(|_, strip| accum.fold(strip, threads))?;
    Ok(accum.finish())
}

/// Convenience wrapper: samples an ensemble of `num_worlds` worlds and
/// estimates ERR.
pub fn edge_reliability_relevance_sampled<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    num_worlds: usize,
    rng: &mut R,
) -> Vec<f64> {
    let ensemble = WorldEnsemble::sample(graph, num_worlds, rng);
    edge_reliability_relevance(graph, &ensemble)
}

/// Naive ERR estimator (paper's "baseline algorithm", Lemma 2): for each
/// edge, sample two fresh conditioned ensembles (e forced present / forced
/// absent) and difference their expected connected-pair counts. Quadratic
/// in |E|; retained for testing and for the Lemma 2-vs-3 benchmark.
pub fn edge_reliability_relevance_naive<R: Rng + ?Sized>(
    graph: &UncertainGraph,
    num_worlds: usize,
    rng: &mut R,
) -> Vec<f64> {
    let m = graph.num_edges();
    let mut err = Vec::with_capacity(m);
    let mut g = graph.clone();
    for e in 0..m as u32 {
        let p = graph.prob(e);
        g.set_prob(e, 1.0).expect("in range");
        let with = WorldEnsemble::sample(&g, num_worlds, rng).expected_connected_pairs();
        g.set_prob(e, 0.0).expect("in range");
        let without = WorldEnsemble::sample(&g, num_worlds, rng).expected_connected_pairs();
        g.set_prob(e, p).expect("in range");
        err.push((with - without).max(0.0));
    }
    err
}

/// Vertex reliability relevance `VRR^u = Σ_{e ∋ u} p(e)·ERR^e`
/// (paper §V-D).
pub fn vertex_reliability_relevance(graph: &UncertainGraph, err: &[f64]) -> Vec<f64> {
    assert_eq!(err.len(), graph.num_edges(), "ERR vector length mismatch");
    let mut vrr = vec![0.0; graph.num_nodes()];
    for (idx, edge) in graph.edges().iter().enumerate() {
        let contribution = edge.p * err[idx];
        vrr[edge.u as usize] += contribution;
        vrr[edge.v as usize] += contribution;
    }
    vrr
}

/// Min–max normalizes a score vector to `[0, 1]` (used by GenObf line 5 to
/// normalize VRR before combining with uniqueness). Constant vectors map to
/// all-zeros.
pub fn min_max_normalize(scores: &[f64]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let lo = scores.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    if span <= 0.0 {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / span).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The paper's Fig. 5(a) scenario: two reliable clusters joined by a
    /// single bridge; the bridge must dominate ERR.
    fn two_clusters() -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(8);
        // cluster A: 0,1,2,3 near-clique
        for &(u, v) in &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        // cluster B: 4,5,6,7 near-clique
        for &(u, v) in &[(4, 5), (5, 6), (6, 7), (4, 6), (5, 7), (4, 7)] {
            g.add_edge(u, v, 0.9).unwrap();
        }
        // bridge
        g.add_edge(3, 4, 0.5).unwrap();
        g
    }

    #[test]
    fn bridge_edge_has_highest_relevance() {
        let g = two_clusters();
        let mut rng = StdRng::seed_from_u64(0);
        let err = edge_reliability_relevance_sampled(&g, 2000, &mut rng);
        let bridge = g.find_edge(3, 4).unwrap() as usize;
        for (e, &score) in err.iter().enumerate() {
            if e != bridge {
                assert!(
                    err[bridge] > score,
                    "bridge ERR {} must dominate edge {e}'s {score}",
                    err[bridge]
                );
            }
        }
        // Analytically: making the bridge present connects ~4×4 = 16 extra
        // pairs (both clusters are internally connected w.h.p.).
        assert!(err[bridge] > 10.0, "bridge ERR = {}", err[bridge]);
    }

    #[test]
    fn single_edge_graph_exact_value() {
        // One edge on 2 nodes: cc = 1 when present, 0 when absent → ERR = 1.
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let err = edge_reliability_relevance_sampled(&g, 3000, &mut rng);
        assert!((err[0] - 1.0).abs() < 0.05, "err={}", err[0]);
    }

    #[test]
    fn deterministic_edges_coupled_semantics() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let err = edge_reliability_relevance_sampled(&g, 100, &mut rng);
        // p = 1: never absent from a world → no usable samples → 0.
        assert_eq!(err[0], 0.0);
        // p = 0: the coupled estimator still knows its marginal impact —
        // adding 1-2 would connect pairs (1,2) and (0,2).
        assert!((err[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn alg2_deterministic_edges_get_zero() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 1.0).unwrap();
        g.add_edge(1, 2, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let ens = WorldEnsemble::sample(&g, 100, &mut rng);
        // Algorithm 2 cannot condition on an empty stratum: both are 0.
        assert_eq!(edge_reliability_relevance_alg2(&g, &ens), vec![0.0, 0.0]);
    }

    #[test]
    fn coupled_matches_alg2_in_expectation() {
        let g = two_clusters();
        let mut rng = StdRng::seed_from_u64(12);
        let ens = WorldEnsemble::sample(&g, 6000, &mut rng);
        let coupled = edge_reliability_relevance(&g, &ens);
        let alg2 = edge_reliability_relevance_alg2(&g, &ens);
        // Same target quantity; Algorithm 2 is noisier, so compare loosely.
        for (e, (c, a)) in coupled.iter().zip(&alg2).enumerate() {
            assert!((c - a).abs() < 1.5, "edge {e}: coupled={c}, alg2={a}");
        }
    }

    #[test]
    fn coupled_single_edge_exact() {
        // One p = 0.5 edge on 2 nodes: every e-absent world has two
        // singletons → s_u·s_v = 1 exactly, no Monte-Carlo noise at all.
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let err = edge_reliability_relevance_sampled(&g, 50, &mut rng);
        assert_eq!(err[0], 1.0);
    }

    #[test]
    fn reused_matches_naive() {
        let g = two_clusters();
        let mut rng = StdRng::seed_from_u64(3);
        let fast = edge_reliability_relevance_sampled(&g, 4000, &mut rng);
        let naive = edge_reliability_relevance_naive(&g, 1500, &mut rng);
        for (e, (f, n)) in fast.iter().zip(&naive).enumerate() {
            assert!((f - n).abs() < 1.2, "edge {e}: fast={f}, naive={n}");
        }
    }

    #[test]
    fn parallel_paths_reduce_relevance() {
        // Edge 0-1 alone vs edge 0-1 with a strong parallel path 0-2-1:
        // the parallel path makes 0-1 less critical.
        let mut lone = UncertainGraph::with_nodes(2);
        lone.add_edge(0, 1, 0.5).unwrap();
        let mut redundant = UncertainGraph::with_nodes(3);
        redundant.add_edge(0, 1, 0.5).unwrap();
        redundant.add_edge(0, 2, 0.95).unwrap();
        redundant.add_edge(2, 1, 0.95).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let e_lone = edge_reliability_relevance_sampled(&lone, 3000, &mut rng)[0];
        let e_red = edge_reliability_relevance_sampled(&redundant, 3000, &mut rng)[0];
        assert!(
            e_red < e_lone,
            "redundant {e_red} should be below lone {e_lone}"
        );
    }

    #[test]
    fn vrr_aggregates_incident_edges() {
        let mut g = UncertainGraph::with_nodes(3);
        g.add_edge(0, 1, 0.5).unwrap();
        g.add_edge(1, 2, 0.25).unwrap();
        let err = vec![2.0, 4.0];
        let vrr = vertex_reliability_relevance(&g, &err);
        assert!((vrr[0] - 0.5 * 2.0).abs() < 1e-12);
        assert!((vrr[1] - (0.5 * 2.0 + 0.25 * 4.0)).abs() < 1e-12);
        assert!((vrr[2] - 0.25 * 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn vrr_rejects_wrong_length() {
        let mut g = UncertainGraph::with_nodes(2);
        g.add_edge(0, 1, 0.5).unwrap();
        let _ = vertex_reliability_relevance(&g, &[1.0, 2.0]);
    }

    #[test]
    fn min_max_normalize_behaviour() {
        assert_eq!(min_max_normalize(&[]), Vec::<f64>::new());
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.0, 0.0]);
        let n = min_max_normalize(&[1.0, 2.0, 3.0]);
        assert!((n[0] - 0.0).abs() < 1e-15);
        assert!((n[1] - 0.5).abs() < 1e-15);
        assert!((n[2] - 1.0).abs() < 1e-15);
    }

    #[test]
    fn threaded_estimators_are_bitwise_thread_count_invariant() {
        let g = two_clusters();
        let mut rng = StdRng::seed_from_u64(20);
        // A world count straddling several accumulation chunks, with a
        // ragged tail.
        let ens = WorldEnsemble::sample(&g, 3 * super::ERR_WORLD_CHUNK + 11, &mut rng);
        let coupled_1 = edge_reliability_relevance_threads(&g, &ens, 1);
        let alg2_1 = edge_reliability_relevance_alg2_threads(&g, &ens, 1);
        for threads in [2, 4, 8] {
            let coupled_n = edge_reliability_relevance_threads(&g, &ens, threads);
            let alg2_n = edge_reliability_relevance_alg2_threads(&g, &ens, threads);
            for e in 0..g.num_edges() {
                assert_eq!(coupled_1[e].to_bits(), coupled_n[e].to_bits());
                assert_eq!(alg2_1[e].to_bits(), alg2_n[e].to_bits());
            }
        }
        // The serial entry points are exactly the 1-thread variants.
        assert_eq!(edge_reliability_relevance(&g, &ens), coupled_1);
        assert_eq!(edge_reliability_relevance_alg2(&g, &ens), alg2_1);
    }

    #[test]
    fn streamed_estimators_are_bit_identical_to_in_ram() {
        let g = two_clusters();
        // Several strips plus a ragged tail, exercising carried partials.
        let n = 3 * super::ERR_WORLD_CHUNK + 11;
        let ens = WorldEnsemble::sample_seeded(&g, n, 99, 1);
        let dense_coupled = edge_reliability_relevance_threads(&g, &ens, 1);
        let dense_alg2 = edge_reliability_relevance_alg2_threads(&g, &ens, 1);
        for strip in [1usize, 64, 100, n, 4 * n] {
            for threads in [1usize, 8] {
                let stream = EnsembleStream::sample(&g, n, 99, threads, strip).unwrap();
                let coupled = edge_reliability_relevance_streamed(&g, &stream, threads).unwrap();
                let alg2 = edge_reliability_relevance_alg2_streamed(&g, &stream, threads).unwrap();
                for e in 0..g.num_edges() {
                    assert_eq!(
                        dense_coupled[e].to_bits(),
                        coupled[e].to_bits(),
                        "coupled edge {e}, strip {strip}, {threads} threads"
                    );
                    assert_eq!(
                        dense_alg2[e].to_bits(),
                        alg2[e].to_bits(),
                        "alg2 edge {e}, strip {strip}, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn err_nonnegative_everywhere() {
        let g = two_clusters();
        let mut rng = StdRng::seed_from_u64(5);
        let err = edge_reliability_relevance_sampled(&g, 200, &mut rng);
        assert!(err.iter().all(|&e| e >= 0.0));
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::with_nodes(4);
        let mut rng = StdRng::seed_from_u64(6);
        let err = edge_reliability_relevance_sampled(&g, 10, &mut rng);
        assert!(err.is_empty());
        let vrr = vertex_reliability_relevance(&g, &err);
        assert_eq!(vrr, vec![0.0; 4]);
    }
}
