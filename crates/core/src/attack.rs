//! Identity-disclosure attack simulation (paper §III-C).
//!
//! The paper motivates (k, ε)-obfuscation with the *identity disclosure
//! problem*: "given a published graph G̃, if an adversary can locate the
//! target entity t as a vertex v of G̃ with high probability via auxiliary
//! information, the identity of t is disclosed". This module makes that
//! operational: it simulates the strongest degree-informed Bayesian
//! adversary and measures how often it wins, turning the entropy-based
//! guarantee into an empirically checkable success rate.
//!
//! For a target v with known property ω (its degree in the original
//! graph), the adversary's posterior over candidate vertices u is
//! `Y_ω(u) ∝ Pr[deg_G̃(u) = ω]`. Attack strategies:
//!
//! * **Top-1**: name the maximum-posterior vertex. Success = it is v.
//! * **Top-c**: output a candidate set of size c. Success = v ∈ set.
//!
//! A (k, ε)-obfuscated release caps the Top-1 success probability of this
//! adversary near 1/k for obfuscated vertices (entropy ≥ log₂k means the
//! posterior is "as spread as" k equally likely candidates; for the
//! max-posterior the bound is not exact, which is precisely why measuring
//! helps).

use crate::anonymity::AdversaryKnowledge;
use chameleon_stats::poisson_binomial::pmf_truncated;
use chameleon_ugraph::{NodeId, UncertainGraph};

/// Result of simulating the degree-informed adversary against every
/// vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackReport {
    /// Fraction of vertices uniquely re-identified (top-1 hit, with the
    /// probability mass split uniformly among posterior ties).
    pub top1_success_rate: f64,
    /// Fraction of vertices contained in the adversary's top-`c` candidate
    /// set (same tie handling), for the `c` this report was run with.
    pub topc_success_rate: f64,
    /// The candidate-set size used for `topc_success_rate`.
    pub candidate_set_size: usize,
    /// Per-vertex adversary posterior mass on the true vertex.
    pub posterior_on_target: Vec<f64>,
}

impl AttackReport {
    /// Mean posterior probability assigned to the true identity — the
    /// "average confidence" of the adversary.
    pub fn mean_posterior(&self) -> f64 {
        if self.posterior_on_target.is_empty() {
            0.0
        } else {
            self.posterior_on_target.iter().sum::<f64>() / self.posterior_on_target.len() as f64
        }
    }

    /// Vertices whose posterior exceeds `threshold` — the "practically
    /// disclosed" set.
    pub fn disclosed(&self, threshold: f64) -> Vec<NodeId> {
        self.posterior_on_target
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p > threshold)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// Simulates the degree-informed Bayesian adversary against `published`,
/// one attack per vertex of the original graph (whose property values are
/// `knowledge`).
///
/// `candidate_set_size` is the adversary's output size for the top-c rate
/// (e.g. 1 for exact re-identification, k for "k-anonymity broken").
///
/// # Panics
/// Panics if `knowledge` does not cover `published`'s vertices or
/// `candidate_set_size == 0`.
pub fn simulate_degree_attack(
    published: &UncertainGraph,
    knowledge: &AdversaryKnowledge,
    candidate_set_size: usize,
) -> AttackReport {
    assert!(candidate_set_size >= 1, "candidate set must be non-empty");
    let n = published.num_nodes();
    assert_eq!(knowledge.len(), n, "knowledge must cover every vertex");
    if n == 0 {
        return AttackReport {
            top1_success_rate: 0.0,
            topc_success_rate: 0.0,
            candidate_set_size,
            posterior_on_target: Vec::new(),
        };
    }
    let omega_max = knowledge.targets().iter().copied().max().unwrap_or(0) as usize;
    let pmfs: Vec<Vec<f64>> = (0..n as u32)
        .map(|v| pmf_truncated(&published.incident_probs(v), omega_max))
        .collect();

    // Group targets by ω so each posterior is computed once.
    let mut by_omega: std::collections::HashMap<u32, Vec<NodeId>> =
        std::collections::HashMap::new();
    for v in 0..n as u32 {
        by_omega.entry(knowledge.target(v)).or_default().push(v);
    }

    let mut top1 = 0.0f64;
    let mut topc = 0.0f64;
    let mut posterior_on_target = vec![0.0; n];
    for (&omega, targets) in &by_omega {
        let w = omega as usize;
        let weights: Vec<f64> = pmfs
            .iter()
            .map(|pmf| pmf.get(w).copied().unwrap_or(0.0))
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // The adversary's value is unattainable in the release: the
            // posterior is undefined; the rational adversary falls back to
            // uniform guessing over all vertices.
            for &v in targets {
                posterior_on_target[v as usize] = 1.0 / n as f64;
                top1 += 1.0 / n as f64;
                topc += (candidate_set_size as f64 / n as f64).min(1.0);
            }
            continue;
        }
        // Posterior mass on each vertex.
        let posterior: Vec<f64> = weights.iter().map(|&x| x / total).collect();
        // Rank order for top-c (ties share uniformly).
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| posterior[b].partial_cmp(&posterior[a]).unwrap());
        let top_value = posterior[order[0]];
        let num_top_ties = posterior
            .iter()
            .filter(|&&p| p >= top_value - 1e-15)
            .count();
        // Value at the c-th rank — members above are certainly in the top-c
        // set, members equal to it share the remaining slots.
        let c = candidate_set_size.min(n);
        let cth_value = posterior[order[c - 1]];
        let strictly_above = posterior.iter().filter(|&&p| p > cth_value + 1e-15).count();
        let at_boundary = posterior
            .iter()
            .filter(|&&p| (p - cth_value).abs() <= 1e-15)
            .count();
        let boundary_share = (c - strictly_above) as f64 / at_boundary as f64;
        for &v in targets {
            let pv = posterior[v as usize];
            posterior_on_target[v as usize] = pv;
            // Top-1: v wins iff it is (one of) the argmax, sharing ties.
            if pv >= top_value - 1e-15 {
                top1 += 1.0 / num_top_ties as f64;
            }
            // Top-c membership probability.
            if pv > cth_value + 1e-15 {
                topc += 1.0;
            } else if (pv - cth_value).abs() <= 1e-15 {
                topc += boundary_share;
            }
        }
    }
    AttackReport {
        top1_success_rate: top1 / n as f64,
        topc_success_rate: topc / n as f64,
        candidate_set_size,
        posterior_on_target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_leaves: usize, p: f64) -> UncertainGraph {
        let mut g = UncertainGraph::with_nodes(n_leaves + 1);
        for v in 1..=n_leaves as u32 {
            g.add_edge(0, v, p).unwrap();
        }
        g
    }

    #[test]
    fn deterministic_star_hub_fully_disclosed() {
        let g = star(5, 1.0);
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let report = simulate_degree_attack(&g, &knowledge, 1);
        // Hub: posterior 1 on itself. Leaves: uniform over 5.
        assert!((report.posterior_on_target[0] - 1.0).abs() < 1e-12);
        for v in 1..=5 {
            assert!((report.posterior_on_target[v] - 0.2).abs() < 1e-12);
        }
        // top1: hub always + each leaf with 1/5 tie-share → (1 + 5·(1/5))/6.
        assert!((report.top1_success_rate - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(report.disclosed(0.9), vec![0]);
    }

    #[test]
    fn topc_grows_with_candidate_set() {
        let g = star(5, 1.0);
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let top1 = simulate_degree_attack(&g, &knowledge, 1);
        let top3 = simulate_degree_attack(&g, &knowledge, 3);
        let top6 = simulate_degree_attack(&g, &knowledge, 6);
        assert!(top3.topc_success_rate >= top1.topc_success_rate);
        // With c = n the adversary always "wins".
        assert!((top6.topc_success_rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_graph_caps_success_at_uniform() {
        // Perfect matching: every vertex identical → posterior uniform →
        // top-1 success = 1/n.
        let mut g = UncertainGraph::with_nodes(8);
        for i in 0..4u32 {
            g.add_edge(2 * i, 2 * i + 1, 0.5).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let report = simulate_degree_attack(&g, &knowledge, 1);
        assert!((report.top1_success_rate - 1.0 / 8.0).abs() < 1e-12);
        assert!((report.mean_posterior() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn unattainable_omega_falls_back_to_uniform() {
        let g = star(3, 1.0);
        let knowledge = AdversaryKnowledge::from_values(vec![9, 1, 1, 1]);
        let report = simulate_degree_attack(&g, &knowledge, 1);
        assert!((report.posterior_on_target[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_lowers_adversary_confidence() {
        let det = star(6, 1.0);
        let fuzzy = star(6, 0.6);
        let knowledge = AdversaryKnowledge::structural_degrees(&det);
        let conf_det = simulate_degree_attack(&det, &knowledge, 1).posterior_on_target[0];
        let conf_fuzzy = simulate_degree_attack(&fuzzy, &knowledge, 1).posterior_on_target[0];
        assert!(conf_fuzzy <= conf_det + 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::with_nodes(0);
        let knowledge = AdversaryKnowledge::from_values(vec![]);
        let report = simulate_degree_attack(&g, &knowledge, 2);
        assert_eq!(report.top1_success_rate, 0.0);
        assert_eq!(report.mean_posterior(), 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_candidate_set_rejected() {
        let g = star(2, 1.0);
        let knowledge = AdversaryKnowledge::structural_degrees(&g);
        let _ = simulate_degree_attack(&g, &knowledge, 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_knowledge_rejected() {
        let g = star(2, 1.0);
        let knowledge = AdversaryKnowledge::from_values(vec![1]);
        let _ = simulate_degree_attack(&g, &knowledge, 1);
    }

    #[test]
    fn obfuscation_reduces_attack_success() {
        use crate::{Chameleon, ChameleonConfig, Method};
        use chameleon_ugraph::generators;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // A graph with distinctive hubs.
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = generators::barabasi_albert(120, 3, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, 0.4 + 0.5 * ((e % 3) as f64 / 3.0)).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let raw = simulate_degree_attack(&g, &knowledge, 1);
        let cfg = ChameleonConfig::builder()
            .k(10)
            .epsilon(0.05)
            .trials(2)
            .num_world_samples(100)
            .sigma_tolerance(0.2)
            .build();
        let result = Chameleon::new(cfg).anonymize(&g, Method::Rsme, 3).unwrap();
        let after = simulate_degree_attack(&result.graph, &knowledge, 1);
        assert!(
            after.top1_success_rate <= raw.top1_success_rate + 1e-9,
            "attack got easier: {} -> {}",
            raw.top1_success_rate,
            after.top1_success_rate
        );
    }
}
