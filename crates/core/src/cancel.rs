//! Cooperative cancellation for long-running anonymization jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining an explicit
//! cancel flag with an optional wall-clock deadline. The Chameleon σ
//! search polls it at phase boundaries (between GenObf invocations), so a
//! cancelled run stops within one GenObf call's worth of work and returns
//! [`crate::ChameleonError::Cancelled`] instead of a result.
//!
//! Polling only reads a clock and an atomic — it never feeds back into
//! any random draw or ordering decision, so a run that is *not* cancelled
//! is bit-identical to one executed without a token. This is what lets
//! `chameleond` enforce per-job timeouts without perturbing determinism.
//!
//! A fired token remembers *why* it fired ([`CancelToken::reason`]):
//! an explicit [`CancelToken::cancel`] call and a passed deadline are
//! different events to a caller — the daemon reports a deadline as a
//! non-retryable timeout but an explicit trip (e.g. an injected fault
//! from `chameleon_server::faults`) as a retryable transient error.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Explicit,
    /// The wall-clock deadline passed.
    Deadline,
}

const LIVE: u8 = 0;
const EXPLICIT: u8 = 1;
const DEADLINE: u8 = 2;

/// Shared cancellation state: explicit flag plus optional deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    /// `LIVE` until the first cancellation event latches its cause; the
    /// first writer wins, so the recorded reason never flips afterwards.
    state: AtomicU8,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: AtomicU8::new(LIVE),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        let _ =
            self.inner
                .state
                .compare_exchange(LIVE, EXPLICIT, Ordering::AcqRel, Ordering::Acquire);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline (if
    /// any) has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.state.load(Ordering::Acquire) != LIVE {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later polls skip the clock read.
                let _ = self.inner.state.compare_exchange(
                    LIVE,
                    DEADLINE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                true
            }
            _ => false,
        }
    }

    /// Why the token fired, or `None` while it is still live. Polls the
    /// deadline first, so an expired-but-not-yet-polled token reports
    /// [`CancelReason::Deadline`] rather than `None`.
    pub fn reason(&self) -> Option<CancelReason> {
        if !self.is_cancelled() {
            return None;
        }
        match self.inner.state.load(Ordering::Acquire) {
            EXPLICIT => Some(CancelReason::Explicit),
            _ => Some(CancelReason::Deadline),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason(), Some(CancelReason::Explicit));
    }

    #[test]
    fn deadline_in_past_fires_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Explicit));
    }

    #[test]
    fn expired_deadline_reports_deadline_even_without_prior_poll() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        // reason() itself must run the deadline check.
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled()); // latches Deadline
        t.cancel(); // must not overwrite the recorded cause
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }
}
