//! Cooperative cancellation for long-running anonymization jobs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle combining an explicit
//! cancel flag with an optional wall-clock deadline. The Chameleon σ
//! search polls it at phase boundaries (between GenObf invocations), so a
//! cancelled run stops within one GenObf call's worth of work and returns
//! [`crate::ChameleonError::Cancelled`] instead of a result.
//!
//! Polling only reads a clock and an atomic — it never feeds back into
//! any random draw or ordering decision, so a run that is *not* cancelled
//! is bit-identical to one executed without a token. This is what lets
//! `chameleond` enforce per-job timeouts without perturbing determinism.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Shared cancellation state: explicit flag plus optional deadline.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] was called or the deadline (if
    /// any) has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => {
                // Latch, so later polls skip the clock read.
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_token_is_live() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_sticky_and_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn deadline_in_past_fires_immediately() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_fire_early() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}
