//! Edge-probability perturbation rules (paper §V-F).
//!
//! Given a noise magnitude `r ∈ [0, 1]` drawn from the truncated normal
//! `R_σ(e)` (or U(0,1) with white-noise probability `q`):
//!
//! * **Max-entropy** (anonymity-oriented, paper's proposal):
//!   `p̃ = p + (1 − 2p)·r`. Derived as gradient ascent on the per-vertex
//!   degree entropy (Lemma 6: ∂H/∂p ∝ 1 − 2p) — noise pushes probabilities
//!   toward ½, maximizing degree uncertainty per unit of perturbation. For
//!   deterministic inputs (p ∈ {0, 1}) this reduces exactly to the scheme
//!   of Boldi et al., which the paper notes as a special case.
//! * **Unguided** (the "naive strategy" of Fig. 7(a)): `p̃ = clamp(p ± r)`
//!   with a fair random sign — the same noise budget spent without
//!   direction control; used by the RS variant and as an ablation.

use chameleon_stats::TruncatedNormal;
use rand::Rng;

/// A perturbation rule mapping `(p, r) → p̃`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PerturbStrategy {
    /// `p̃ = p + (1 − 2p)·r` — entropy-gradient-guided.
    MaxEntropy,
    /// `p̃ = clamp(p ± r, 0, 1)` with random sign.
    Unguided,
}

impl PerturbStrategy {
    /// Applies the rule. `r` must lie in `[0, 1]`.
    pub fn apply<R: Rng + ?Sized>(&self, p: f64, r: f64, rng: &mut R) -> f64 {
        debug_assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        debug_assert!((0.0..=1.0).contains(&r), "r out of range: {r}");
        match self {
            PerturbStrategy::MaxEntropy => (p + (1.0 - 2.0 * p) * r).clamp(0.0, 1.0),
            PerturbStrategy::Unguided => {
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                (p + sign * r).clamp(0.0, 1.0)
            }
        }
    }
}

/// Draws the noise magnitude for one edge (Algorithm 3 lines 19–21): with
/// probability `white_noise` a uniform draw, otherwise a truncated normal
/// with scale `sigma_e`.
pub fn draw_noise<R: Rng + ?Sized>(sigma_e: f64, white_noise: f64, rng: &mut R) -> f64 {
    if rng.gen::<f64>() < white_noise {
        rng.gen::<f64>()
    } else {
        TruncatedNormal::half_unit(sigma_e.max(1e-9)).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_stats::PoissonBinomial;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn max_entropy_moves_toward_half() {
        let mut rng = StdRng::seed_from_u64(0);
        // From below ½: increases; from above: decreases.
        let up = PerturbStrategy::MaxEntropy.apply(0.2, 0.5, &mut rng);
        assert!((up - 0.5).abs() < (0.2f64 - 0.5).abs());
        assert!(up > 0.2);
        let down = PerturbStrategy::MaxEntropy.apply(0.8, 0.5, &mut rng);
        assert!(down < 0.8);
        assert!((down - 0.5).abs() < (0.8f64 - 0.5).abs());
    }

    #[test]
    fn max_entropy_full_noise_flips_to_complement() {
        let mut rng = StdRng::seed_from_u64(1);
        // r = 1: p̃ = 1 − p.
        assert!((PerturbStrategy::MaxEntropy.apply(0.7, 1.0, &mut rng) - 0.3).abs() < 1e-12);
        assert!((PerturbStrategy::MaxEntropy.apply(0.0, 1.0, &mut rng) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_entropy_boldi_special_case() {
        let mut rng = StdRng::seed_from_u64(2);
        // p = 1 (existing deterministic edge): p̃ = 1 − r.
        let r = 0.3;
        assert!((PerturbStrategy::MaxEntropy.apply(1.0, r, &mut rng) - 0.7).abs() < 1e-12);
        // p = 0 (absent edge): p̃ = r.
        assert!((PerturbStrategy::MaxEntropy.apply(0.0, r, &mut rng) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn max_entropy_fixed_point_at_half() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((PerturbStrategy::MaxEntropy.apply(0.5, 0.8, &mut rng) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unguided_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let p = rng.gen::<f64>();
            let r = rng.gen::<f64>();
            let out = PerturbStrategy::Unguided.apply(p, r, &mut rng);
            assert!((0.0..=1.0).contains(&out));
        }
    }

    #[test]
    fn unguided_uses_both_directions() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ups = 0;
        let mut downs = 0;
        for _ in 0..200 {
            let out = PerturbStrategy::Unguided.apply(0.5, 0.2, &mut rng);
            if out > 0.5 {
                ups += 1;
            } else if out < 0.5 {
                downs += 1;
            }
        }
        assert!(ups > 50 && downs > 50, "ups={ups}, downs={downs}");
    }

    #[test]
    fn draw_noise_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            let r = draw_noise(0.3, 0.05, &mut rng);
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn white_noise_level_one_is_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mean: f64 = (0..3000)
            .map(|_| draw_noise(0.01, 1.0, &mut rng))
            .sum::<f64>()
            / 3000.0;
        // Pure U(0,1) regardless of tiny sigma.
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn small_sigma_yields_small_noise() {
        let mut rng = StdRng::seed_from_u64(8);
        let mean: f64 = (0..3000)
            .map(|_| draw_noise(0.02, 0.0, &mut rng))
            .sum::<f64>()
            / 3000.0;
        assert!(mean < 0.05, "mean={mean}");
    }

    /// The paper's core claim for ME (Lemma 6): with equal noise budgets,
    /// the max-entropy rule yields higher expected degree entropy than the
    /// unguided rule.
    #[test]
    fn max_entropy_beats_unguided_on_degree_entropy() {
        let mut rng = StdRng::seed_from_u64(9);
        // A vertex with 8 incident edges at p = 0.9 (low entropy: degree
        // concentrated at 8).
        let probs = [0.9; 8];
        let reps = 400;
        let r_budget = 0.3;
        let mut h_me = 0.0;
        let mut h_un = 0.0;
        for _ in 0..reps {
            let me: Vec<f64> = probs
                .iter()
                .map(|&p| {
                    PerturbStrategy::MaxEntropy.apply(p, r_budget * rng.gen::<f64>(), &mut rng)
                })
                .collect();
            let un: Vec<f64> = probs
                .iter()
                .map(|&p| PerturbStrategy::Unguided.apply(p, r_budget * rng.gen::<f64>(), &mut rng))
                .collect();
            h_me += PoissonBinomial::new(&me).entropy_nats();
            h_un += PoissonBinomial::new(&un).entropy_nats();
        }
        assert!(
            h_me > h_un,
            "max-entropy {h_me} should exceed unguided {h_un}"
        );
    }
}
