//! Persisted GenObf trial randomness for the incremental σ search
//! (DESIGN.md §6d).
//!
//! A GenObf trial is a deterministic function of `(graph, selection, σ,
//! ρ)` where ρ is the trial's random tape: the candidate selection plus,
//! per candidate, a white-noise coin, a magnitude uniform, and (for the
//! unguided strategy) a sign bit. Crucially σ only enters *after* the tape
//! — the truncated-normal draw is inverse-CDF sampling, `r = F⁻¹_σ(u)` —
//! so one recorded tape can be re-evaluated at every σ the search probes.
//!
//! [`TrialPlan`] records the tape once (from the trial's call-0 RNG
//! stream) and re-transforms it per probe. Evaluating a probe then costs
//! the inverse CDFs plus a *cached* anonymity check: only vertices
//! incident to candidate edges recompute their degree pmf
//! ([`DegreePmfCache`]), against an incident-probability overlay instead
//! of a cloned graph. The winning trial's graph is materialized only when
//! a probe passes.
//!
//! The first GenObf call of a run consumes the tape exactly as the
//! non-incremental path would, so call 0 is bit-identical with the toggle
//! on or off; later calls reuse the tape instead of redrawing, which is
//! the documented stream divergence of §6d.

use crate::anonymity::{
    anonymity_check_cached, AdversaryKnowledge, AnonymityReport, DegreePmfCache,
};
use crate::candidate::{select_candidates, CandidateEdge, VertexSampler};
use crate::config::ChameleonConfig;
use crate::perturb::PerturbStrategy;
use chameleon_stats::TruncatedNormal;
use chameleon_ugraph::{NodeId, UncertainGraph};
use rand::Rng;
use std::collections::HashMap;

/// Incident-probability overlay of one vertex touched by the trial's
/// candidates: the base adjacency probabilities (plus appended slots for
/// injected edges) and where each candidate's perturbed probability lands.
#[derive(Debug, Clone)]
struct VertexOverlay {
    v: NodeId,
    /// Base incident probabilities in adjacency order, extended by one
    /// slot per injected incident candidate (in candidate order — exactly
    /// where `add_edge` would append them).
    template: Vec<f64>,
    /// `(position in template, candidate index)` writes to apply.
    writes: Vec<(u32, u32)>,
}

/// One GenObf trial's recorded randomness, re-evaluable at any σ.
#[derive(Debug, Clone)]
pub(crate) struct TrialPlan {
    candidates: Vec<CandidateEdge>,
    /// Per-candidate selection weight `Q^e` and its trial aggregates —
    /// kept separate (not pre-divided) so σ_e is computed by the exact
    /// float expression of the non-incremental path.
    q_edge: Vec<f64>,
    q_sum: f64,
    q_mean: f64,
    /// White-noise coin uniform per candidate.
    coin: Vec<f64>,
    /// Magnitude uniform per candidate: the white-noise value itself, or
    /// the quantile fed to the truncated normal's inverse CDF.
    value: Vec<f64>,
    /// Unguided-strategy sign per candidate (empty for max-entropy).
    sign_up: Vec<bool>,
    overlays: Vec<VertexOverlay>,
    /// Degree pmfs: base-graph values for untouched vertices (shared with
    /// every probe), overwritten per probe for overlay vertices.
    cache: DegreePmfCache,
    /// Perturbed probability per candidate at the most recent σ.
    p_new: Vec<f64>,
    scratch: Vec<f64>,
}

impl TrialPlan {
    /// Records one trial's tape from `rng`, consuming draws in exactly the
    /// order the non-incremental trial does: candidate selection first,
    /// then coin, value and (unguided only) sign per candidate.
    pub(crate) fn record<R: Rng + ?Sized>(
        graph: &UncertainGraph,
        sampler: &VertexSampler,
        cfg: &ChameleonConfig,
        strategy: PerturbStrategy,
        selection: &[f64],
        base_cache: &DegreePmfCache,
        rng: &mut R,
    ) -> Self {
        let candidates = select_candidates(graph, sampler, cfg.size_multiplier, rng);
        let q_edge: Vec<f64> = candidates
            .iter()
            .map(|c| 0.5 * (selection[c.u as usize] + selection[c.v as usize]))
            .collect();
        let q_sum: f64 = q_edge.iter().sum();
        let q_mean = if q_sum > 0.0 {
            q_sum / candidates.len() as f64
        } else {
            1.0
        };
        let mut coin = Vec::with_capacity(candidates.len());
        let mut value = Vec::with_capacity(candidates.len());
        let mut sign_up = Vec::new();
        for _ in &candidates {
            coin.push(rng.gen::<f64>());
            // Both draw_noise branches consume exactly one more uniform;
            // which transform applies is decided at evaluation time.
            value.push(rng.gen::<f64>());
            if strategy == PerturbStrategy::Unguided {
                sign_up.push(rng.gen::<bool>());
            }
        }

        // Overlay construction: one entry per touched vertex.
        let mut overlay_of: HashMap<NodeId, usize> = HashMap::new();
        let mut overlays: Vec<VertexOverlay> = Vec::new();
        for (ci, cand) in candidates.iter().enumerate() {
            for w in [cand.u, cand.v] {
                let oi = *overlay_of.entry(w).or_insert_with(|| {
                    overlays.push(VertexOverlay {
                        v: w,
                        template: graph.incident_probs(w),
                        writes: Vec::new(),
                    });
                    overlays.len() - 1
                });
                let overlay = &mut overlays[oi];
                let pos = match cand.existing {
                    Some(e) => graph
                        .neighbors(w)
                        .iter()
                        .position(|&(_, id)| id == e)
                        .expect("candidate edge is incident to its endpoint"),
                    None => {
                        overlay.template.push(0.0);
                        overlay.template.len() - 1
                    }
                };
                overlay.writes.push((pos as u32, ci as u32));
            }
        }
        let n_cands = candidates.len();
        Self {
            candidates,
            q_edge,
            q_sum,
            q_mean,
            coin,
            value,
            sign_up,
            overlays,
            cache: base_cache.clone(),
            p_new: vec![0.0; n_cands],
            scratch: Vec::new(),
        }
    }

    /// True when the trial selected no candidates (degenerate; the
    /// non-incremental path reports `(1.0, None)` for such a trial).
    pub(crate) fn is_degenerate(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Re-evaluates the tape at `sigma`: recomputes every candidate's
    /// perturbed probability, refreshes the touched degree pmfs, and runs
    /// the cached anonymity check. Bit-identical to perturbing a cloned
    /// graph and checking it directly.
    pub(crate) fn check_at_sigma(
        &mut self,
        sigma: f64,
        strategy: PerturbStrategy,
        knowledge: &AdversaryKnowledge,
        cfg: &ChameleonConfig,
    ) -> AnonymityReport {
        debug_assert!(!self.is_degenerate());
        for (i, cand) in self.candidates.iter().enumerate() {
            let sigma_e = if self.q_sum > 0.0 {
                (sigma * self.q_edge[i] / self.q_mean).clamp(1e-9, 3.0)
            } else {
                sigma.clamp(1e-9, 3.0)
            };
            let r = if self.coin[i] < cfg.white_noise {
                self.value[i]
            } else {
                TruncatedNormal::half_unit(sigma_e.max(1e-9)).inverse_cdf(self.value[i])
            };
            self.p_new[i] = match strategy {
                PerturbStrategy::MaxEntropy => (cand.p + (1.0 - 2.0 * cand.p) * r).clamp(0.0, 1.0),
                PerturbStrategy::Unguided => {
                    let sign = if self.sign_up[i] { 1.0 } else { -1.0 };
                    (cand.p + sign * r).clamp(0.0, 1.0)
                }
            };
        }
        for overlay in &self.overlays {
            self.scratch.clear();
            self.scratch.extend_from_slice(&overlay.template);
            for &(pos, ci) in &overlay.writes {
                self.scratch[pos as usize] = self.p_new[ci as usize];
            }
            self.cache.set_from_probs(overlay.v, &self.scratch);
        }
        chameleon_obs::counter!("genobf.pmf_overlays").add(self.overlays.len() as u64);
        anonymity_check_cached(&self.cache, knowledge, cfg.k)
    }

    /// Builds the perturbed graph for the most recent
    /// [`TrialPlan::check_at_sigma`] — the same clone-and-apply sequence
    /// the non-incremental trial performs up front, deferred to winners.
    pub(crate) fn materialize(&self, graph: &UncertainGraph) -> UncertainGraph {
        let mut perturbed = graph.clone();
        for (cand, &p_new) in self.candidates.iter().zip(&self.p_new) {
            match cand.existing {
                Some(e) => perturbed.set_prob(e, p_new).expect("edge exists"),
                None => {
                    perturbed
                        .add_edge(cand.u, cand.v, p_new)
                        .expect("candidate was a non-edge");
                }
            }
        }
        perturbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymity::anonymity_check;
    use crate::perturb::draw_noise;
    use chameleon_stats::SeedSequence;
    use chameleon_ugraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup() -> (UncertainGraph, Vec<f64>, VertexSampler) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = generators::gnm(30, 55, &mut rng);
        for e in 0..g.num_edges() as u32 {
            g.set_prob(e, rng.gen::<f64>()).unwrap();
        }
        let selection: Vec<f64> = (0..30).map(|i| 0.05 + 0.03 * i as f64).collect();
        let sampler = VertexSampler::new(&selection, &HashSet::new());
        (g, selection, sampler)
    }

    /// The reference trial: exactly the non-incremental gen_obf body.
    fn reference_trial(
        graph: &UncertainGraph,
        sampler: &VertexSampler,
        cfg: &ChameleonConfig,
        strategy: PerturbStrategy,
        selection: &[f64],
        sigma: f64,
        rng: &mut StdRng,
    ) -> UncertainGraph {
        let candidates = select_candidates(graph, sampler, cfg.size_multiplier, rng);
        let q_edge: Vec<f64> = candidates
            .iter()
            .map(|c| 0.5 * (selection[c.u as usize] + selection[c.v as usize]))
            .collect();
        let q_sum: f64 = q_edge.iter().sum();
        let q_mean = if q_sum > 0.0 {
            q_sum / candidates.len() as f64
        } else {
            1.0
        };
        let mut perturbed = graph.clone();
        for (cand, &qe) in candidates.iter().zip(&q_edge) {
            let sigma_e = if q_sum > 0.0 {
                (sigma * qe / q_mean).clamp(1e-9, 3.0)
            } else {
                sigma.clamp(1e-9, 3.0)
            };
            let r = draw_noise(sigma_e, cfg.white_noise, rng);
            let p_new = strategy.apply(cand.p, r, rng);
            match cand.existing {
                Some(e) => perturbed.set_prob(e, p_new).unwrap(),
                None => {
                    perturbed.add_edge(cand.u, cand.v, p_new).unwrap();
                }
            }
        }
        perturbed
    }

    #[test]
    fn plan_replays_the_reference_trial_bit_for_bit() {
        let (g, selection, sampler) = setup();
        let cfg = ChameleonConfig::builder()
            .k(3)
            .white_noise(0.05)
            .num_world_samples(10)
            .build();
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let base_cache = DegreePmfCache::build(&g, &knowledge, 1);
        for strategy in [PerturbStrategy::MaxEntropy, PerturbStrategy::Unguided] {
            for sigma in [0.05, 0.3, 1.7] {
                let seq = SeedSequence::new(11);
                let mut rng_ref = seq.rng_indexed2("genobf-trial", 0, 0);
                let expect = reference_trial(
                    &g,
                    &sampler,
                    &cfg,
                    strategy,
                    &selection,
                    sigma,
                    &mut rng_ref,
                );
                let mut rng_plan = seq.rng_indexed2("genobf-trial", 0, 0);
                let mut plan = TrialPlan::record(
                    &g,
                    &sampler,
                    &cfg,
                    strategy,
                    &selection,
                    &base_cache,
                    &mut rng_plan,
                );
                let report = plan.check_at_sigma(sigma, strategy, &knowledge, &cfg);
                let got = plan.materialize(&g);
                // Graphs agree bit for bit (edge order, endpoints, probs).
                assert_eq!(expect.num_edges(), got.num_edges());
                for (a, b) in expect.edges().iter().zip(got.edges()) {
                    assert_eq!((a.u, a.v), (b.u, b.v));
                    assert_eq!(a.p.to_bits(), b.p.to_bits(), "({},{})", a.u, a.v);
                }
                // Cached check agrees with the direct check of the
                // materialized graph bit for bit.
                let direct = anonymity_check(&expect, &knowledge, cfg.k);
                assert_eq!(report.unobfuscated, direct.unobfuscated);
                assert_eq!(report.eps_hat.to_bits(), direct.eps_hat.to_bits());
                for (omega, h) in &direct.entropy_by_omega {
                    assert_eq!(h.to_bits(), report.entropy_by_omega[omega].to_bits());
                }
            }
        }
    }

    #[test]
    fn one_plan_re_evaluates_across_many_sigmas() {
        // The core incremental property: a single recorded tape checked at
        // several σ values matches freshly perturbed graphs driven by the
        // same RNG stream — in any probe order, including revisits.
        let (g, selection, sampler) = setup();
        let cfg = ChameleonConfig::builder().k(2).white_noise(0.01).build();
        let strategy = PerturbStrategy::MaxEntropy;
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let base_cache = DegreePmfCache::build(&g, &knowledge, 1);
        let seq = SeedSequence::new(77);
        let mut plan = TrialPlan::record(
            &g,
            &sampler,
            &cfg,
            strategy,
            &selection,
            &base_cache,
            &mut seq.rng_indexed2("genobf-trial", 0, 0),
        );
        for sigma in [1.0, 0.25, 2.0, 0.25, 0.7] {
            let report = plan.check_at_sigma(sigma, strategy, &knowledge, &cfg);
            let expect = reference_trial(
                &g,
                &sampler,
                &cfg,
                strategy,
                &selection,
                sigma,
                &mut seq.rng_indexed2("genobf-trial", 0, 0),
            );
            let got = plan.materialize(&g);
            for (a, b) in expect.edges().iter().zip(got.edges()) {
                assert_eq!(a.p.to_bits(), b.p.to_bits());
            }
            let direct = anonymity_check(&expect, &knowledge, cfg.k);
            assert_eq!(report.unobfuscated, direct.unobfuscated);
            assert_eq!(report.eps_hat.to_bits(), direct.eps_hat.to_bits());
        }
    }
}
