//! Uniqueness scores (paper §V-C, Definition 4, after Boldi et al.).
//!
//! The θ-commonness of a property value ω is a Gaussian-kernel density
//! estimate over all vertices' property values; uniqueness is its
//! reciprocal. A vertex with a rare (expected) degree is highly unique,
//! hard to hide, and therefore needs more noise — GenObf samples its edges
//! with higher probability.
//!
//! For uncertain graphs the property is the **expected degree**
//! `E[deg(v)] = Σ_{e ∋ v} p(e)`, and the paper sets the bandwidth
//! θ = σ_G, the standard deviation of the property values in the input
//! graph (rather than Boldi's θ = σ of the noise distribution).

use chameleon_stats::GaussianKde;
use chameleon_ugraph::UncertainGraph;

/// Per-vertex uniqueness scores `U^v` of the uncertain graph, computed on
/// expected degrees with the paper's θ = σ_G bandwidth.
pub fn uniqueness_scores(graph: &UncertainGraph) -> Vec<f64> {
    uniqueness_scores_scaled(graph, 1.0)
}

/// Uniqueness scores with bandwidth θ = `scale`·σ_G — the ablation knob
/// over the paper's bandwidth choice (§V-C sets scale = 1).
///
/// # Panics
/// Panics if `scale` is not strictly positive and finite.
pub fn uniqueness_scores_scaled(graph: &UncertainGraph, scale: f64) -> Vec<f64> {
    assert!(
        scale.is_finite() && scale > 0.0,
        "invalid bandwidth scale {scale}"
    );
    let values = graph.expected_degrees();
    if values.is_empty() {
        return Vec::new();
    }
    let sd = chameleon_stats::Summary::from_slice(&values).population_std_dev();
    let theta = if sd > 1e-12 { sd * scale } else { scale };
    uniqueness_with_bandwidth(&values, theta)
}

/// Uniqueness scores for an explicit property-value vector (used by the
/// deterministic Rep-An baseline, where the property is the plain degree).
pub fn uniqueness_of_values(values: &[f64]) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let kde = GaussianKde::with_data_bandwidth(values.to_vec());
    kde.uniqueness_at_support()
}

/// Uniqueness scores with an explicit bandwidth θ (exposed for ablations
/// over the paper's bandwidth choice).
pub fn uniqueness_with_bandwidth(values: &[f64], theta: f64) -> Vec<f64> {
    if values.is_empty() {
        return Vec::new();
    }
    let kde = GaussianKde::new(values.to_vec(), theta);
    kde.uniqueness_at_support()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_matching() -> UncertainGraph {
        // Node 0 is a hub (degree 6); nodes 7..=12 form a matching with
        // expected degree 0.5 each; hub's leaves have expected degree ~0.9.
        let mut g = UncertainGraph::with_nodes(13);
        for v in 1..7u32 {
            g.add_edge(0, v, 0.9).unwrap();
        }
        for i in 0..3u32 {
            g.add_edge(7 + 2 * i, 8 + 2 * i, 0.5).unwrap();
        }
        g
    }

    #[test]
    fn hub_is_most_unique() {
        let g = star_plus_matching();
        let u = uniqueness_scores(&g);
        let hub = u[0];
        for (v, &score) in u.iter().enumerate().skip(1) {
            assert!(hub > score, "hub {hub} should exceed node {v}'s {score}");
        }
    }

    #[test]
    fn identical_vertices_share_scores() {
        let g = star_plus_matching();
        let u = uniqueness_scores(&g);
        for v in 8..13 {
            assert!(
                (u[7] - u[v]).abs() < 1e-9,
                "matching nodes should have equal uniqueness"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = UncertainGraph::with_nodes(0);
        assert!(uniqueness_scores(&g).is_empty());
        assert!(uniqueness_of_values(&[]).is_empty());
    }

    #[test]
    fn all_scores_positive_finite() {
        let g = star_plus_matching();
        for s in uniqueness_scores(&g) {
            assert!(s > 0.0 && s.is_finite());
        }
    }

    #[test]
    fn explicit_bandwidth_changes_scale() {
        let vals = [1.0, 1.0, 1.0, 10.0];
        let narrow = uniqueness_with_bandwidth(&vals, 0.5);
        let wide = uniqueness_with_bandwidth(&vals, 100.0);
        // Narrow bandwidth: outlier dramatically more unique; wide: scores
        // nearly equal.
        assert!(narrow[3] / narrow[0] > 2.0);
        assert!((wide[3] / wide[0] - 1.0).abs() < 0.1);
    }

    #[test]
    fn matches_paper_property_choice() {
        // The scores must be a function of expected degrees only: rewiring
        // that preserves expected degrees preserves scores.
        let mut g1 = UncertainGraph::with_nodes(4);
        g1.add_edge(0, 1, 1.0).unwrap();
        g1.add_edge(2, 3, 1.0).unwrap();
        let mut g2 = UncertainGraph::with_nodes(4);
        g2.add_edge(0, 2, 1.0).unwrap();
        g2.add_edge(1, 3, 1.0).unwrap();
        assert_eq!(uniqueness_scores(&g1), uniqueness_scores(&g2));
    }
}
