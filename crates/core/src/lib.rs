//! Chameleon: reliability-preserving syntactic anonymization of uncertain
//! graphs.
//!
//! This crate implements the primary contribution of *"Sharing Uncertain
//! Graphs Using Syntactic Private Graph Models"* (Xiao, Eltabakh, Kong —
//! ICDE 2018): publish an uncertain graph `G = (V, E, p)` as a
//! **(k, ε)-obfuscated** uncertain graph `G̃ = (V, Ẽ, p̃)` whose
//! *reliability discrepancy* from `G` is as small as possible.
//!
//! # Pipeline
//!
//! ```text
//! UncertainGraph ──► Chameleon::anonymize(method, k, ε)
//!                      │ 1. uniqueness scores  U^v      (§V-C, Def. 4)
//!                      │ 2. reliability relevance VRR^v (§V-D, Alg. 2)
//!                      │ 3. σ binary search             (Alg. 1)
//!                      │      └─ GenObf trials          (Alg. 3)
//!                      │           ├─ candidate edges E_C
//!                      │           ├─ per-edge noise σ(e)
//!                      │           ├─ perturbation (max-entropy / unguided)
//!                      │           └─ (k, ε) anonymity check  (Def. 3)
//!                      ▼
//! ObfuscationResult { graph: G̃, sigma, eps_hat, … }
//! ```
//!
//! # Quick example
//!
//! ```
//! use chameleon_core::{Chameleon, ChameleonConfig, Method};
//! use chameleon_ugraph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut g = generators::gnm(60, 150, &mut rng);
//! for e in 0..g.num_edges() as u32 {
//!     g.set_prob(e, 0.3 + 0.4 * ((e % 5) as f64 / 5.0)).unwrap();
//! }
//! let config = ChameleonConfig::builder()
//!     .k(5)
//!     .epsilon(0.15)
//!     .num_world_samples(120)
//!     .trials(3)
//!     .build();
//! let result = Chameleon::new(config)
//!     .anonymize(&g, Method::Rsme, 42)
//!     .expect("obfuscation should succeed at this k");
//! assert!(result.eps_hat <= 0.15);
//! assert_eq!(result.graph.num_nodes(), g.num_nodes());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod anonymity;
pub mod attack;
pub mod cancel;
pub mod candidate;
pub mod chameleon;
pub mod config;
pub mod genobf_checkpoint;
mod genobf_plan;
pub mod method;
pub mod perturb;
pub mod profile;
pub mod relevance;
pub mod uniqueness;

pub use anonymity::{
    anonymity_check, anonymity_check_cached, anonymity_check_streamed, anonymity_check_threads,
    anonymity_check_tolerant, anonymity_check_tolerant_threads, AdversaryKnowledge,
    AnonymityReport, DegreePmfCache,
};
pub use attack::{simulate_degree_attack, AttackReport};
pub use cancel::{CancelReason, CancelToken};
pub use chameleon::{Chameleon, ChameleonError, ObfuscationResult};
pub use config::{ChameleonConfig, ChameleonConfigBuilder};
pub use genobf_checkpoint::{
    graph_fingerprint, search_fingerprint, CheckpointHook, CheckpointSink, ProbeRecord,
    SearchCheckpoint,
};
pub use method::Method;
pub use perturb::PerturbStrategy;
pub use profile::PrivacyProfile;
pub use relevance::{
    edge_reliability_relevance, edge_reliability_relevance_streamed,
    edge_reliability_relevance_threads, vertex_reliability_relevance, ErrAlg2Accum,
    ErrCoupledAccum,
};
pub use uniqueness::uniqueness_scores;
