//! Configuration of the Chameleon anonymization pipeline.

use crate::genobf_checkpoint::{CheckpointHook, SearchCheckpoint};

/// Tunable parameters of [`crate::Chameleon`].
///
/// Field defaults follow the paper: `c = 2` candidate-set multiplier,
/// `q = 0.01` white-noise level, `t = 5` GenObf trials, `N = 1000` sampled
/// worlds (the paper's "1000 usually suffices" setting).
#[derive(Debug, Clone, PartialEq)]
pub struct ChameleonConfig {
    /// Desired obfuscation level `k` (paper Definition 3): every obfuscated
    /// vertex must hide in an entropy-≥ log₂k crowd.
    pub k: usize,
    /// Tolerance ε: up to `ε·|V|` vertices may remain unobfuscated.
    pub epsilon: f64,
    /// Candidate-set size multiplier `c` (Algorithm 3 line 16): the
    /// perturbation set grows to `c·|E|` edges.
    pub size_multiplier: f64,
    /// White-noise level `q` (Algorithm 3 line 20): with probability `q` an
    /// edge's noise is drawn from U(0,1) instead of the truncated normal.
    pub white_noise: f64,
    /// Number of randomized GenObf attempts `t` per σ value.
    pub trials: usize,
    /// Number of Monte-Carlo worlds `N` for reliability-relevance
    /// estimation.
    pub num_world_samples: usize,
    /// Initial upper bound for the σ search (Algorithm 1 starts at 1).
    pub sigma_init: f64,
    /// Stop the σ bisection once `σ_u − σ_l` falls below this.
    pub sigma_tolerance: f64,
    /// Hard cap on σ doubling steps (Algorithm 1 lines 2–5) to guarantee
    /// termination when no obfuscation exists at any noise level.
    pub max_doublings: usize,
    /// Uniqueness-bandwidth scale: θ = `bandwidth_scale`·σ_G (the paper's
    /// §V-C choice is 1.0; exposed for ablation).
    pub bandwidth_scale: f64,
    /// Worker threads for the Monte-Carlo hot paths (world sampling, ERR
    /// estimation, anonymity checks, GenObf trials). `0` uses all hardware
    /// threads. Results are bit-identical for every value — `1` runs the
    /// same chunked algorithms without thread machinery.
    pub num_threads: usize,
    /// Reuse each GenObf trial's randomness across the σ search instead of
    /// redrawing it (DESIGN.md §6d): candidate selections, noise coins and
    /// uniform draws are persisted per trial and re-transformed through
    /// each probe's σ-dependent inverse CDF, and degree pmfs are cached so
    /// an anonymity check only recomputes vertices whose incident edges
    /// moved. The first GenObf call is bit-identical to the non-incremental
    /// path; later probes legally consume their randomness differently, so
    /// the end-to-end result is a deterministic function of `(seed,
    /// config)` but can differ between the two settings once the σ search
    /// takes more than one probe.
    pub incremental: bool,
    /// Durability hook (DESIGN.md §11): called with the cumulative
    /// [`SearchCheckpoint`] after every live GenObf probe. The sink only
    /// observes the search — it never feeds randomness back — so result
    /// bytes are identical with or without it. Excluded from config
    /// equality except by handle identity.
    pub checkpoint: Option<CheckpointHook>,
    /// Resume state: a checkpoint from an earlier run of the *same*
    /// search (graph, method, seed and config must match its
    /// fingerprint). Recorded probes are replayed without recomputation;
    /// the final output is bit-identical to an uninterrupted run.
    pub resume_from: Option<SearchCheckpoint>,
    /// Out-of-core ensemble analysis (DESIGN.md §12): when non-zero, the
    /// VRR ensemble is held compressed and analyzed `strip_worlds` worlds
    /// at a time (rounded up to the 64-world alignment), making ensemble
    /// memory O(strip) instead of O(N). Results are **bit-identical** to
    /// the in-RAM path for every strip size. `0` keeps the dense in-RAM
    /// ensemble. Incompatible with `incremental` (which must keep its
    /// dense ensemble alive across σ probes).
    pub strip_worlds: usize,
}

impl Default for ChameleonConfig {
    fn default() -> Self {
        Self {
            k: 100,
            epsilon: 1e-3,
            size_multiplier: 2.0,
            white_noise: 0.01,
            trials: 5,
            num_world_samples: 1000,
            sigma_init: 1.0,
            sigma_tolerance: 0.05,
            max_doublings: 6,
            bandwidth_scale: 1.0,
            num_threads: 0,
            incremental: false,
            checkpoint: None,
            resume_from: None,
            strip_worlds: 0,
        }
    }
}

impl ChameleonConfig {
    /// Starts a builder with paper defaults.
    pub fn builder() -> ChameleonConfigBuilder {
        ChameleonConfigBuilder::default()
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.k < 1 {
            return Err("k must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.epsilon) {
            return Err(format!("epsilon {} must lie in [0, 1]", self.epsilon));
        }
        if self.size_multiplier <= 0.0 {
            return Err("size multiplier must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.white_noise) {
            return Err(format!(
                "white-noise level {} must lie in [0, 1]",
                self.white_noise
            ));
        }
        if self.trials == 0 {
            return Err("need at least one trial".into());
        }
        if self.num_world_samples == 0 {
            return Err("need at least one world sample".into());
        }
        if self.sigma_init <= 0.0 || !self.sigma_init.is_finite() {
            return Err("sigma_init must be positive and finite".into());
        }
        if self.sigma_tolerance <= 0.0 {
            return Err("sigma_tolerance must be positive".into());
        }
        if !(self.bandwidth_scale.is_finite() && self.bandwidth_scale > 0.0) {
            return Err("bandwidth_scale must be positive and finite".into());
        }
        if self.strip_worlds > 0 && self.incremental {
            return Err(
                "strip_worlds requires the non-incremental search: the incremental \
                 GenObf path keeps its dense ensemble alive across probes"
                    .into(),
            );
        }
        Ok(())
    }
}

/// Builder for [`ChameleonConfig`].
#[derive(Debug, Clone, Default)]
pub struct ChameleonConfigBuilder {
    config: Option<ChameleonConfig>,
}

macro_rules! setter {
    ($(#[$doc:meta])* $name:ident : $ty:ty) => {
        $(#[$doc])*
        pub fn $name(mut self, value: $ty) -> Self {
            self.entry().$name = value;
            self
        }
    };
}

impl ChameleonConfigBuilder {
    fn entry(&mut self) -> &mut ChameleonConfig {
        self.config.get_or_insert_with(ChameleonConfig::default)
    }

    setter!(
        /// Sets the obfuscation level `k`.
        k: usize
    );
    setter!(
        /// Sets the tolerance ε.
        epsilon: f64
    );
    setter!(
        /// Sets the candidate-set multiplier `c`.
        size_multiplier: f64
    );
    setter!(
        /// Sets the white-noise level `q`.
        white_noise: f64
    );
    setter!(
        /// Sets the number of GenObf trials `t`.
        trials: usize
    );
    setter!(
        /// Sets the Monte-Carlo world count `N`.
        num_world_samples: usize
    );
    setter!(
        /// Sets the initial σ search bound.
        sigma_init: f64
    );
    setter!(
        /// Sets the σ bisection tolerance.
        sigma_tolerance: f64
    );
    setter!(
        /// Sets the doubling-step cap.
        max_doublings: usize
    );
    setter!(
        /// Sets the uniqueness-bandwidth scale (ablation; paper uses 1).
        bandwidth_scale: f64
    );
    setter!(
        /// Sets the worker-thread count (`0` = all hardware threads).
        num_threads: usize
    );
    setter!(
        /// Enables the incremental (randomness-reusing) GenObf σ search.
        incremental: bool
    );
    setter!(
        /// Sets the per-probe checkpoint sink (durability layer).
        checkpoint: Option<CheckpointHook>
    );
    setter!(
        /// Sets the checkpoint to resume the σ search from.
        resume_from: Option<SearchCheckpoint>
    );
    setter!(
        /// Sets the out-of-core analysis strip (`0` = dense in-RAM
        /// ensembles).
        strip_worlds: usize
    );

    /// Finalizes the configuration.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (use [`ChameleonConfig::validate`]
    /// for fallible validation).
    pub fn build(mut self) -> ChameleonConfig {
        let config = self.entry().clone();
        config.validate().expect("invalid Chameleon configuration");
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ChameleonConfig::default();
        assert_eq!(c.k, 100);
        assert_eq!(c.trials, 5);
        assert_eq!(c.num_world_samples, 1000);
        assert!((c.size_multiplier - 2.0).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let c = ChameleonConfig::builder()
            .k(50)
            .epsilon(0.01)
            .trials(3)
            .num_world_samples(200)
            .sigma_tolerance(0.1)
            .num_threads(2)
            .build();
        assert_eq!(c.k, 50);
        assert_eq!(c.trials, 3);
        assert_eq!(c.num_world_samples, 200);
        assert_eq!(c.num_threads, 2);
        assert!((c.epsilon - 0.01).abs() < 1e-15);
    }

    #[test]
    fn threads_default_to_auto() {
        assert_eq!(ChameleonConfig::default().num_threads, 0);
        assert!(ChameleonConfig::default().validate().is_ok());
    }

    #[test]
    fn incremental_defaults_off_and_is_settable() {
        assert!(!ChameleonConfig::default().incremental);
        let c = ChameleonConfig::builder().incremental(true).build();
        assert!(c.incremental);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_rejects_bad_values() {
        let mut c = ChameleonConfig::default();
        c.k = 0;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.epsilon = 1.5;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.size_multiplier = 0.0;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.white_noise = -0.1;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.trials = 0;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.num_world_samples = 0;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.sigma_init = f64::NAN;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.sigma_tolerance = 0.0;
        assert!(c.validate().is_err());
        let mut c = ChameleonConfig::default();
        c.bandwidth_scale = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn strip_worlds_defaults_off_and_rejects_incremental() {
        assert_eq!(ChameleonConfig::default().strip_worlds, 0);
        let c = ChameleonConfig::builder().strip_worlds(256).build();
        assert_eq!(c.strip_worlds, 256);
        assert!(c.validate().is_ok());
        let mut c = ChameleonConfig::default();
        c.strip_worlds = 64;
        c.incremental = true;
        let err = c.validate().unwrap_err();
        assert!(err.contains("incremental"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid Chameleon configuration")]
    fn builder_panics_on_invalid() {
        let _ = ChameleonConfig::builder().k(0).build();
    }
}
