//! The Chameleon anonymization driver: GenObf (paper Algorithm 3) wrapped
//! in the σ binary-search skeleton (paper Algorithm 1).

use crate::anonymity::{
    anonymity_check_streamed, anonymity_check_threads, AdversaryKnowledge, AnonymityReport,
    DegreePmfCache,
};
use crate::cancel::CancelToken;
use crate::candidate::{select_candidates, VertexSampler};
use crate::config::ChameleonConfig;
use crate::genobf_checkpoint::{
    graph_fingerprint, search_fingerprint, CheckpointHook, ProbeRecord, SearchCheckpoint,
};
use crate::genobf_plan::TrialPlan;
use crate::method::Method;
use crate::perturb::draw_noise;
use crate::relevance::{
    edge_reliability_relevance_streamed, edge_reliability_relevance_threads, min_max_normalize,
    vertex_reliability_relevance,
};
use crate::uniqueness::uniqueness_scores_scaled;
use chameleon_reliability::{EnsembleStream, WorldEnsemble};
use chameleon_stats::alloc_guard;
use chameleon_stats::{parallel, SeedSequence};
use chameleon_ugraph::{NodeId, UncertainGraph};
use std::collections::{HashSet, VecDeque};

/// Downward σ sweep length when the upward phase fails (σ_init · 2⁻²⁰ is
/// effectively zero noise; below that the graph is unchanged and further
/// halving cannot change the outcome).
const MAX_HALVINGS: usize = 20;

/// Errors from the anonymization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ChameleonError {
    /// The configuration failed validation.
    Config(String),
    /// No (k, ε)-obfuscation was found even at the largest σ tried; the
    /// privacy demand is too strong for this graph (the paper notes very
    /// large k produces graphs "extremely different from the original").
    NoObfuscationFound {
        /// Largest noise level attempted.
        max_sigma: f64,
        /// Best (smallest) ε̂ observed across all attempts.
        best_eps_hat: f64,
    },
    /// The input graph is degenerate (no nodes or no edges to perturb).
    DegenerateInput(String),
    /// The run was cancelled cooperatively (explicit cancel or deadline)
    /// before a result was found; see [`crate::cancel::CancelToken`].
    Cancelled,
    /// A resume checkpoint does not belong to this search (fingerprint
    /// mismatch) or records a trajectory the deterministic search cannot
    /// reproduce. Callers holding persisted checkpoints should validate
    /// with [`SearchCheckpoint::matches`] and fall back to a fresh run.
    CheckpointInvalid(String),
    /// The run would exceed the configured ensemble memory ceiling
    /// (`chameleon_stats::alloc_guard::set_ensemble_limit`). Raise the
    /// ceiling or lower [`ChameleonConfig::strip_worlds`].
    ResourceLimit(String),
}

impl std::fmt::Display for ChameleonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChameleonError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ChameleonError::NoObfuscationFound {
                max_sigma,
                best_eps_hat,
            } => write!(
                f,
                "no (k, eps)-obfuscation found up to sigma = {max_sigma} \
                 (best eps-hat = {best_eps_hat})"
            ),
            ChameleonError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
            ChameleonError::Cancelled => write!(f, "run cancelled before completion"),
            ChameleonError::CheckpointInvalid(msg) => write!(f, "invalid checkpoint: {msg}"),
            ChameleonError::ResourceLimit(msg) => write!(f, "resource limit: {msg}"),
        }
    }
}

impl std::error::Error for ChameleonError {}

/// Output of a successful anonymization.
#[derive(Debug, Clone)]
pub struct ObfuscationResult {
    /// The published (k, ε)-obfuscated uncertain graph.
    pub graph: UncertainGraph,
    /// The final (smallest successful) noise parameter σ.
    pub sigma: f64,
    /// Achieved fraction of unobfuscated vertices (≤ ε).
    pub eps_hat: f64,
    /// The method variant used.
    pub method: Method,
    /// Total GenObf invocations across the σ search.
    pub genobf_calls: usize,
    /// Anonymity report of the returned graph.
    pub report: AnonymityReport,
    /// Per-vertex uniqueness scores of the input (diagnostics).
    pub uniqueness: Vec<f64>,
    /// Per-vertex reliability relevance of the input (diagnostics; empty
    /// for methods that do not use it).
    pub vrr: Vec<f64>,
    /// σ-search telemetry: every GenObf invocation as
    /// `(sigma, best eps-hat observed at that sigma)` in call order —
    /// lets callers plot the search trajectory and the privacy-vs-noise
    /// response of their graph.
    pub sigma_trace: Vec<(f64, f64)>,
    /// Probes replayed from [`ChameleonConfig::resume_from`] instead of
    /// recomputed (0 for a fresh run). `genobf_calls` still counts them —
    /// the call counter is part of the deterministic trajectory.
    pub replayed_probes: usize,
}

/// Outcome of one GenObf call (paper Algorithm 3's `⟨ε̃, G̃⟩`).
#[derive(Debug, Clone)]
struct GenObfOutcome {
    /// ε̃ — fraction unobfuscated, or 1.0 when every trial failed.
    eps_hat: f64,
    /// Smallest ε̂ actually observed across trials, even when above the
    /// target (diagnostic; drives the near-miss report on failure).
    eps_nearest: f64,
    graph: Option<(UncertainGraph, AnonymityReport)>,
}

/// Durability state threaded through one σ search: the queue of probes to
/// replay from a resume checkpoint, the cumulative record of probes seen
/// so far (replayed + live), and the sink to notify after live probes.
struct CheckpointState<'a> {
    replay: VecDeque<ProbeRecord>,
    probes: Vec<ProbeRecord>,
    fingerprint: u64,
    seed: u64,
    sink: Option<&'a CheckpointHook>,
    replayed: usize,
}

/// What the σ-search control flow needs from one probe. `payload` is
/// `None` for replayed probes — the graph is materialized lazily, and only
/// if that probe ends up winning the search.
struct ProbeEval {
    call: u64,
    eps_hat: f64,
    eps_nearest: f64,
    passed: bool,
    payload: Option<(UncertainGraph, AnonymityReport)>,
}

/// Best passing probe seen so far. A replayed winner carries no payload;
/// the search end materializes it by re-running its recorded call.
struct BestSoFar {
    sigma: f64,
    eps_hat: f64,
    call: u64,
    payload: Option<(UncertainGraph, AnonymityReport)>,
}

/// The anonymization engine. Construct with a [`ChameleonConfig`], then
/// call [`Chameleon::anonymize`].
#[derive(Debug, Clone)]
pub struct Chameleon {
    config: ChameleonConfig,
}

impl Chameleon {
    /// Creates an engine with the given configuration.
    pub fn new(config: ChameleonConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChameleonConfig {
        &self.config
    }

    /// Anonymizes `graph` with the given method variant; `seed` drives all
    /// randomness (same seed ⇒ identical output).
    ///
    /// Implements paper Algorithm 1: uniqueness and reliability relevance
    /// are computed once (they depend only on the input graph), then GenObf
    /// is invoked under an exponential-growth + bisection search for the
    /// smallest σ that yields a (k, ε)-obfuscation.
    ///
    /// # Errors
    /// [`ChameleonError::Config`] on invalid configuration,
    /// [`ChameleonError::DegenerateInput`] on an empty graph, and
    /// [`ChameleonError::NoObfuscationFound`] when the privacy target is
    /// unreachable within the σ budget.
    pub fn anonymize(
        &self,
        graph: &UncertainGraph,
        method: Method,
        seed: u64,
    ) -> Result<ObfuscationResult, ChameleonError> {
        self.anonymize_cancellable(graph, method, seed, &CancelToken::new())
    }

    /// [`Chameleon::anonymize`] with cooperative cancellation: the token is
    /// polled between GenObf invocations (each σ probe), and a fired token
    /// aborts the search with [`ChameleonError::Cancelled`]. A run whose
    /// token never fires is bit-identical to a plain `anonymize` call —
    /// polling reads a flag and a clock, nothing that feeds the pipeline.
    ///
    /// # Errors
    /// As [`Chameleon::anonymize`], plus [`ChameleonError::Cancelled`].
    pub fn anonymize_cancellable(
        &self,
        graph: &UncertainGraph,
        method: Method,
        seed: u64,
        cancel: &CancelToken,
    ) -> Result<ObfuscationResult, ChameleonError> {
        let _span = chameleon_obs::span!("anonymize.run");
        self.config.validate().map_err(ChameleonError::Config)?;
        if cancel.is_cancelled() {
            return Err(ChameleonError::Cancelled);
        }
        if graph.num_nodes() == 0 {
            return Err(ChameleonError::DegenerateInput("graph has no nodes".into()));
        }
        if graph.num_edges() == 0 {
            return Err(ChameleonError::DegenerateInput("graph has no edges".into()));
        }
        // Durability (DESIGN.md §11): a resume checkpoint must fingerprint
        // the exact same deterministic search — graph, method, seed and
        // every probe-affecting config knob — or its recorded trajectory is
        // meaningless here.
        let fingerprint = search_fingerprint(graph_fingerprint(graph), method, seed, &self.config);
        let mut replay: VecDeque<ProbeRecord> = VecDeque::new();
        if let Some(cp) = &self.config.resume_from {
            if cp.fingerprint != fingerprint {
                return Err(ChameleonError::CheckpointInvalid(format!(
                    "checkpoint fingerprint {:016x} does not match this search ({fingerprint:016x})",
                    cp.fingerprint
                )));
            }
            replay = cp.probes.iter().cloned().collect();
        }
        let mut ckpt = CheckpointState {
            replay,
            probes: Vec::new(),
            fingerprint,
            seed,
            sink: self.config.checkpoint.as_ref(),
            replayed: 0,
        };

        let seq = SeedSequence::new(seed);
        let threads = parallel::resolve_threads(self.config.num_threads);
        let knowledge = AdversaryKnowledge::expected_degrees(graph);

        // ---- Lines 1–2 of Algorithm 3, hoisted: invariants of the input.
        let uniq = uniqueness_scores_scaled(graph, self.config.bandwidth_scale);
        let vrr = if method.reliability_oriented() {
            let ens_seed = seq.derive("relevance-ensemble");
            let err = if self.config.strip_worlds > 0 {
                // Out-of-core path (DESIGN.md §12): compressed worlds,
                // strip-folded ERR. Bit-identical to the dense branch —
                // same CRN chunk streams, same fold order.
                let stream = EnsembleStream::sample(
                    graph,
                    self.config.num_world_samples,
                    ens_seed,
                    threads,
                    self.config.strip_worlds,
                )
                .map_err(|e| ChameleonError::ResourceLimit(e.to_string()))?;
                edge_reliability_relevance_streamed(graph, &stream, threads)
                    .map_err(|e| ChameleonError::ResourceLimit(e.to_string()))?
            } else {
                // Dense path under a ceiling: fail up front with advice
                // instead of blowing through the budget mid-sample.
                alloc_guard::check_ensemble_budget(WorldEnsemble::estimate_arena_bytes(
                    graph,
                    self.config.num_world_samples,
                ))
                .map_err(|e| ChameleonError::ResourceLimit(e.to_string()))?;
                let ensemble = WorldEnsemble::sample_seeded(
                    graph,
                    self.config.num_world_samples,
                    ens_seed,
                    threads,
                );
                edge_reliability_relevance_threads(graph, &ensemble, threads)
            };
            vertex_reliability_relevance(graph, &err)
        } else {
            Vec::new()
        };
        let (excluded, selection) = prepare_selection(graph, method, &uniq, &vrr, &self.config);

        let mut sigma_trace: Vec<(f64, f64)> = Vec::new();
        // ---- Algorithm 1: exponential growth phase.
        //
        // Deviation from the paper (documented in DESIGN.md §3): Algorithm
        // 1 assumes privacy is monotone in sigma. That holds for
        // deterministic inputs (Boldi et al.), but with an *uncertain*
        // original, over-noising can RE-EXPOSE vertices: injected edges
        // shift every degree distribution away from the adversary's
        // recorded values, collapsing the entropy of low-degree classes. So
        // when the upward sweep fails we also sweep downward (halving) —
        // the feasible region is an interval, and the final bisection still
        // finds its lower (minimum-noise) edge.
        let mut calls = 0usize;
        // Incremental mode (DESIGN.md §6d): the first GenObf call records
        // every trial's randomness into these plans; later σ probes
        // re-evaluate them instead of redrawing.
        let mut trial_plans: Option<Vec<TrialPlan>> = None;
        let mut best_eps_seen = 1.0f64;
        let mut sigma_l = 0.0f64;
        let mut sigma_u = self.config.sigma_init;
        let mut best: Option<BestSoFar> = None;
        for _ in 0..=self.config.max_doublings {
            if cancel.is_cancelled() {
                return Err(ChameleonError::Cancelled);
            }
            let eval = self.probe_sigma(
                graph,
                &knowledge,
                method,
                sigma_u,
                &selection,
                &excluded,
                &seq,
                &mut calls,
                &mut trial_plans,
                &mut ckpt,
            );
            best_eps_seen = best_eps_seen.min(eval.eps_nearest);
            sigma_trace.push((sigma_u, eval.eps_nearest));
            if eval.passed {
                best = Some(BestSoFar {
                    sigma: sigma_u,
                    eps_hat: eval.eps_hat,
                    call: eval.call,
                    payload: eval.payload,
                });
                break;
            }
            sigma_l = sigma_u;
            sigma_u *= 2.0;
        }
        if best.is_none() {
            // Downward sweep: privacy may hold at noise levels below
            // sigma_init (e.g. when the raw graph is already nearly
            // compliant and large noise over-perturbs).
            let mut sigma = self.config.sigma_init / 2.0;
            for _ in 0..MAX_HALVINGS {
                if cancel.is_cancelled() {
                    return Err(ChameleonError::Cancelled);
                }
                let eval = self.probe_sigma(
                    graph,
                    &knowledge,
                    method,
                    sigma,
                    &selection,
                    &excluded,
                    &seq,
                    &mut calls,
                    &mut trial_plans,
                    &mut ckpt,
                );
                best_eps_seen = best_eps_seen.min(eval.eps_nearest);
                sigma_trace.push((sigma, eval.eps_nearest));
                if eval.passed {
                    sigma_l = 0.0;
                    sigma_u = sigma;
                    best = Some(BestSoFar {
                        sigma,
                        eps_hat: eval.eps_hat,
                        call: eval.call,
                        payload: eval.payload,
                    });
                    break;
                }
                sigma /= 2.0;
            }
        }
        let Some(mut current_best) = best else {
            return Err(ChameleonError::NoObfuscationFound {
                max_sigma: sigma_u,
                best_eps_hat: best_eps_seen,
            });
        };

        // ---- Algorithm 1: bisection phase (relative tolerance, so tiny
        // feasible edges are located precisely).
        while sigma_u - sigma_l > self.config.sigma_tolerance * sigma_u.max(1e-12) {
            if cancel.is_cancelled() {
                return Err(ChameleonError::Cancelled);
            }
            let sigma = 0.5 * (sigma_u + sigma_l);
            let eval = self.probe_sigma(
                graph,
                &knowledge,
                method,
                sigma,
                &selection,
                &excluded,
                &seq,
                &mut calls,
                &mut trial_plans,
                &mut ckpt,
            );
            best_eps_seen = best_eps_seen.min(eval.eps_nearest);
            sigma_trace.push((sigma, eval.eps_nearest));
            if eval.passed {
                sigma_u = sigma;
                current_best = BestSoFar {
                    sigma,
                    eps_hat: eval.eps_hat,
                    call: eval.call,
                    payload: eval.payload,
                };
            } else {
                sigma_l = sigma;
            }
        }

        let BestSoFar {
            sigma,
            eps_hat,
            call,
            payload,
        } = current_best;
        let (graph_out, report) = match payload {
            Some(payload) => payload,
            None => {
                // The winning probe was replayed from the checkpoint, so
                // its graph was never built. Each probe is a pure function
                // of (graph, config, seed, call index) — re-running the
                // one winning call reproduces it bit for bit.
                let mut replay_calls = call as usize;
                let outcome = self.gen_obf(
                    graph,
                    &knowledge,
                    method,
                    sigma,
                    &selection,
                    &excluded,
                    &seq,
                    &mut replay_calls,
                    &mut trial_plans,
                );
                match outcome.graph {
                    Some(payload) => payload,
                    None => {
                        return Err(ChameleonError::CheckpointInvalid(format!(
                            "checkpointed winning probe (call {call}, sigma {sigma}) \
                             did not reproduce a passing graph"
                        )))
                    }
                }
            }
        };
        Ok(ObfuscationResult {
            graph: graph_out,
            sigma,
            eps_hat,
            method,
            genobf_calls: calls,
            report,
            uniqueness: uniq,
            vrr,
            sigma_trace,
            replayed_probes: ckpt.replayed,
        })
    }

    /// One σ probe of Algorithm 1, replay-aware: if the front of the
    /// resume queue records exactly this `(call, σ)` probe, its outcome is
    /// taken from the checkpoint without recomputation; otherwise the
    /// probe runs live via [`Chameleon::gen_obf`] and — when a sink is
    /// configured — the cumulative probe history is emitted afterwards.
    ///
    /// A replay record that disagrees with the deterministic trajectory
    /// (wrong σ bits or call index) invalidates the rest of the queue: the
    /// remainder is dropped and the search continues live, which is always
    /// correct, merely slower.
    #[allow(clippy::too_many_arguments)]
    fn probe_sigma(
        &self,
        graph: &UncertainGraph,
        knowledge: &AdversaryKnowledge,
        method: Method,
        sigma: f64,
        selection: &[f64],
        excluded: &HashSet<NodeId>,
        seq: &SeedSequence,
        calls: &mut usize,
        plans: &mut Option<Vec<TrialPlan>>,
        ckpt: &mut CheckpointState<'_>,
    ) -> ProbeEval {
        if let Some(front) = ckpt.replay.front() {
            if front.sigma.to_bits() == sigma.to_bits() && front.call == *calls as u64 {
                let rec = ckpt.replay.pop_front().expect("front exists");
                *calls = rec.call as usize + 1;
                ckpt.replayed += 1;
                chameleon_obs::counter!("genobf.probes_replayed").add(1);
                let eval = ProbeEval {
                    call: rec.call,
                    eps_hat: rec.eps_hat,
                    eps_nearest: rec.eps_nearest,
                    passed: rec.passed,
                    payload: None,
                };
                ckpt.probes.push(rec);
                return eval;
            }
            ckpt.replay.clear();
        }
        let call = *calls as u64;
        let outcome = self.gen_obf(
            graph, knowledge, method, sigma, selection, excluded, seq, calls, plans,
        );
        ckpt.probes.push(ProbeRecord {
            call,
            sigma,
            eps_hat: outcome.eps_hat,
            eps_nearest: outcome.eps_nearest,
            passed: outcome.graph.is_some(),
        });
        if let Some(sink) = ckpt.sink {
            sink.emit(&SearchCheckpoint {
                fingerprint: ckpt.fingerprint,
                seed: ckpt.seed,
                probes: ckpt.probes.clone(),
            });
        }
        ProbeEval {
            call,
            eps_hat: outcome.eps_hat,
            eps_nearest: outcome.eps_nearest,
            passed: outcome.graph.is_some(),
            payload: outcome.graph,
        }
    }

    /// One GenObf invocation (paper Algorithm 3): `t` randomized attempts
    /// at noise level σ, returning the best (k, ε)-satisfying graph found.
    ///
    /// With `config.incremental` set, the trials' randomness is recorded
    /// into `plans` on the first call and re-evaluated on every later one
    /// (DESIGN.md §6d) instead of being redrawn.
    #[allow(clippy::too_many_arguments)]
    fn gen_obf(
        &self,
        graph: &UncertainGraph,
        knowledge: &AdversaryKnowledge,
        method: Method,
        sigma: f64,
        selection: &[f64],
        excluded: &HashSet<NodeId>,
        seq: &SeedSequence,
        calls: &mut usize,
        plans: &mut Option<Vec<TrialPlan>>,
    ) -> GenObfOutcome {
        let _span = chameleon_obs::span!("genobf.call");
        let call_idx = *calls as u64;
        *calls += 1;
        let cfg = &self.config;
        let threads = parallel::resolve_threads(cfg.num_threads);
        let sampler = VertexSampler::new(selection, excluded);
        let strategy = method.perturbation();
        if cfg.incremental {
            return self.gen_obf_incremental(
                graph, knowledge, strategy, sigma, selection, &sampler, seq, plans,
            );
        }
        // When trials run concurrently, the per-trial anonymity check runs
        // single-threaded (nested fan-out would oversubscribe the pool);
        // with a single trial the check gets the whole budget instead. The
        // report is thread-count-invariant either way.
        let check_threads = if threads.min(cfg.trials) > 1 {
            1
        } else {
            threads
        };
        // Trials are independent: each owns the RNG stream
        // (seed, "genobf-trial", call_idx, trial), so they can run in any
        // order on any number of threads and still reproduce the serial
        // result exactly. The (call, trial) pair seeds via
        // `rng_indexed2` — the flattened `call·1000 + trial` form used
        // previously collides once a config asks for ≥ 1000 trials.
        let outcomes: Vec<(f64, Option<(UncertainGraph, AnonymityReport)>)> =
            parallel::map_items(cfg.trials, threads, |trial| {
                let _trial_span = chameleon_obs::span!("genobf.trial");
                chameleon_obs::counter!("genobf.trials").add(1);
                let mut rng = seq.rng_indexed2("genobf-trial", call_idx, trial as u64);
                // Edge selection (lines 9–16).
                let candidates = {
                    let _s = chameleon_obs::span!("genobf.select");
                    select_candidates(graph, &sampler, cfg.size_multiplier, &mut rng)
                };
                if candidates.is_empty() {
                    return (1.0, None);
                }
                chameleon_obs::counter!("genobf.edges_perturbed").add(candidates.len() as u64);
                // Noise budgets (σ(e) ∝ Q^e, mean σ(e) = σ; §V-E).
                let q_edge: Vec<f64> = candidates
                    .iter()
                    .map(|c| 0.5 * (selection[c.u as usize] + selection[c.v as usize]))
                    .collect();
                let q_sum: f64 = q_edge.iter().sum();
                let q_mean = if q_sum > 0.0 {
                    q_sum / candidates.len() as f64
                } else {
                    1.0
                };
                // Perturbation (lines 17–23).
                let _s_perturb = chameleon_obs::span!("genobf.perturb");
                let mut perturbed = {
                    let _s = chameleon_obs::span!("genobf.clone");
                    graph.clone()
                };
                for (cand, &qe) in candidates.iter().zip(&q_edge) {
                    let sigma_e = if q_sum > 0.0 {
                        (sigma * qe / q_mean).clamp(1e-9, 3.0)
                    } else {
                        sigma.clamp(1e-9, 3.0)
                    };
                    let r = draw_noise(sigma_e, cfg.white_noise, &mut rng);
                    let p_new = strategy.apply(cand.p, r, &mut rng);
                    match cand.existing {
                        Some(e) => perturbed.set_prob(e, p_new).expect("edge exists"),
                        None => {
                            perturbed
                                .add_edge(cand.u, cand.v, p_new)
                                .expect("candidate was a non-edge");
                        }
                    }
                }
                // Anonymity check (line 24). With strip_worlds set the
                // degree pmfs are built strip-by-strip and discarded
                // (bit-identical report, O(strip·ω_max) memory).
                drop(_s_perturb);
                let report = if cfg.strip_worlds > 0 {
                    anonymity_check_streamed(
                        &perturbed,
                        knowledge,
                        cfg.k,
                        cfg.strip_worlds,
                        check_threads,
                    )
                } else {
                    anonymity_check_threads(&perturbed, knowledge, cfg.k, check_threads)
                };
                (report.eps_hat, Some((perturbed, report)))
            });
        // Fold in trial order with strict-improvement selection: the
        // winner is the first trial attaining the minimal passing ε̂,
        // exactly as a serial loop over trials would pick.
        let mut best: Option<(f64, UncertainGraph, AnonymityReport)> = None;
        let mut eps_nearest = 1.0f64;
        for (eps_observed, trial_result) in outcomes {
            eps_nearest = eps_nearest.min(eps_observed);
            let Some((perturbed, report)) = trial_result else {
                continue;
            };
            if report.eps_hat <= cfg.epsilon {
                let better = best
                    .as_ref()
                    .map(|(e, _, _)| report.eps_hat < *e)
                    .unwrap_or(true);
                if better {
                    best = Some((report.eps_hat, perturbed, report));
                }
            }
        }
        match best {
            Some((eps_hat, g, rep)) => GenObfOutcome {
                eps_hat,
                eps_nearest,
                graph: Some((g, rep)),
            },
            None => GenObfOutcome {
                eps_hat: 1.0,
                eps_nearest,
                graph: None,
            },
        }
    }

    /// The incremental GenObf path (DESIGN.md §6d): trials are recorded
    /// once — on the first call, from exactly the RNG streams the
    /// non-incremental path would consume, so that call's winner is
    /// bit-identical — and every σ probe afterwards re-transforms the
    /// stored randomness through the new σ's inverse CDF. Anonymity checks
    /// run off the shared degree-pmf cache, and the winning graph is
    /// materialized only when a probe passes.
    #[allow(clippy::too_many_arguments)]
    fn gen_obf_incremental(
        &self,
        graph: &UncertainGraph,
        knowledge: &AdversaryKnowledge,
        strategy: crate::perturb::PerturbStrategy,
        sigma: f64,
        selection: &[f64],
        sampler: &VertexSampler,
        seq: &SeedSequence,
        plans: &mut Option<Vec<TrialPlan>>,
    ) -> GenObfOutcome {
        let cfg = &self.config;
        let threads = parallel::resolve_threads(cfg.num_threads);
        // The tape is always recorded from the call-0 RNG streams, no
        // matter which call triggers recording: in a fresh run the first
        // call *is* call 0, and in a checkpoint-resumed run the first live
        // call comes later — pinning the stream index keeps the recorded
        // tape (and therefore every downstream probe) identical to the
        // uninterrupted run's.
        let plans = plans.get_or_insert_with(|| {
            let _s = chameleon_obs::span!("genobf.plan_record");
            let base_cache = DegreePmfCache::build(graph, knowledge, threads);
            (0..cfg.trials)
                .map(|trial| {
                    let mut rng = seq.rng_indexed2("genobf-trial", 0, trial as u64);
                    TrialPlan::record(
                        graph,
                        sampler,
                        cfg,
                        strategy,
                        selection,
                        &base_cache,
                        &mut rng,
                    )
                })
                .collect()
        });
        // Serial strict-improvement fold, same winner rule as the parallel
        // path. An ε̂ = 0 probe cannot be strictly beaten, so the remaining
        // trials are skipped (eps_nearest may then under-report — a legal
        // §6d divergence of the diagnostic trace).
        let mut best: Option<(f64, usize, AnonymityReport)> = None;
        let mut eps_nearest = 1.0f64;
        for (trial, plan) in plans.iter_mut().enumerate() {
            let _trial_span = chameleon_obs::span!("genobf.trial");
            chameleon_obs::counter!("genobf.trials").add(1);
            if plan.is_degenerate() {
                continue;
            }
            let report = plan.check_at_sigma(sigma, strategy, knowledge, cfg);
            eps_nearest = eps_nearest.min(report.eps_hat);
            if report.eps_hat <= cfg.epsilon {
                let better = best
                    .as_ref()
                    .map(|(e, _, _)| report.eps_hat < *e)
                    .unwrap_or(true);
                if better {
                    let exact = report.eps_hat == 0.0;
                    best = Some((report.eps_hat, trial, report));
                    if exact {
                        break;
                    }
                }
            }
        }
        match best {
            Some((eps_hat, trial, report)) => GenObfOutcome {
                eps_hat,
                eps_nearest,
                graph: Some((plans[trial].materialize(graph), report)),
            },
            None => GenObfOutcome {
                eps_hat: 1.0,
                eps_nearest,
                graph: None,
            },
        }
    }
}

/// Lines 3–6 of Algorithm 3: pick the excluded set `H` (the ⌈ε/2·|V|⌉
/// vertices with the largest combined uniqueness × relevance — hopeless to
/// obfuscate, allowed to be skipped by the ε tolerance) and the selection
/// weights `Q^v` over `V \ H`.
fn prepare_selection(
    graph: &UncertainGraph,
    method: Method,
    uniq: &[f64],
    vrr: &[f64],
    cfg: &ChameleonConfig,
) -> (HashSet<NodeId>, Vec<f64>) {
    let n = graph.num_nodes();
    // Exclusion score: U · VRR when relevance is available, else U.
    let exclusion: Vec<f64> = if method.reliability_oriented() {
        uniq.iter().zip(vrr).map(|(u, r)| u * r).collect()
    } else {
        uniq.to_vec()
    };
    let h_size = ((cfg.epsilon / 2.0) * n as f64).ceil() as usize;
    // Keep at least 2 vertices samplable.
    let h_size = h_size.min(n.saturating_sub(2));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        exclusion[b]
            .partial_cmp(&exclusion[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let excluded: HashSet<NodeId> = order[..h_size].iter().map(|&v| v as NodeId).collect();
    // Selection weights over V \ H (excluded vertices keep an entry but are
    // never sampled; slot content is irrelevant).
    // Selection weight floor: with a sharp VRR estimate, `1 − VRR̂` is
    // exactly 0 for the most reliability-critical vertex and near 0 for
    // its peers; if those vertices are also the unique ones that *must*
    // be obfuscated, GenObf can never succeed at any σ. The floor keeps
    // every vertex perturbable (at 20× lower priority) while preserving
    // the reliability-sensitive ordering.
    const SELECTION_FLOOR: f64 = 0.05;
    let selection: Vec<f64> = if method.reliability_oriented() {
        let vrr_norm = min_max_normalize(vrr);
        uniq.iter()
            .zip(&vrr_norm)
            .map(|(u, r)| u * (1.0 - r).max(SELECTION_FLOOR))
            .collect()
    } else {
        uniq.to_vec()
    };
    (excluded, selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymity::anonymity_check;
    use crate::relevance::edge_reliability_relevance;
    use chameleon_ugraph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A graph where everyone has a near-identical neighborhood except a
    /// few unique hubs — obfuscatable with modest noise.
    fn test_graph(seed: u64) -> UncertainGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = generators::gnm(80, 200, &mut rng);
        for e in 0..g.num_edges() as u32 {
            let p = 0.2 + 0.6 * ((e % 7) as f64 / 7.0);
            g.set_prob(e, p).unwrap();
        }
        g
    }

    fn quick_config(k: usize) -> ChameleonConfig {
        ChameleonConfig::builder()
            .k(k)
            .epsilon(0.1)
            .trials(3)
            .num_world_samples(150)
            .sigma_tolerance(0.2)
            .build()
    }

    #[test]
    fn anonymize_satisfies_privacy_target() {
        let g = test_graph(1);
        let cham = Chameleon::new(quick_config(8));
        for method in Method::ALL {
            let res = cham.anonymize(&g, method, 99).unwrap();
            assert!(res.eps_hat <= 0.1, "{method}: eps_hat = {}", res.eps_hat);
            assert_eq!(res.graph.num_nodes(), g.num_nodes());
            assert!(res.graph.num_edges() >= g.num_edges());
            assert!(res.sigma > 0.0);
            assert!(res.genobf_calls >= 1);
            // Returned report must match a fresh check.
            let knowledge = AdversaryKnowledge::expected_degrees(&g);
            let fresh = anonymity_check(&res.graph, &knowledge, 8);
            assert!((fresh.eps_hat - res.eps_hat).abs() < 1e-12);
        }
    }

    #[test]
    fn results_are_reproducible() {
        let g = test_graph(2);
        let cham = Chameleon::new(quick_config(6));
        let a = cham.anonymize(&g, Method::Rsme, 7).unwrap();
        let b = cham.anonymize(&g, Method::Rsme, 7).unwrap();
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.eps_hat, b.eps_hat);
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        for (x, y) in a.graph.edges().iter().zip(b.graph.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert!((x.p - y.p).abs() < 1e-15);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = test_graph(12);
        let base = quick_config(6);
        let serial_cfg = ChameleonConfig {
            num_threads: 1,
            ..base.clone()
        };
        let serial = Chameleon::new(serial_cfg)
            .anonymize(&g, Method::Rsme, 17)
            .unwrap();
        for threads in [2, 8] {
            let cfg = ChameleonConfig {
                num_threads: threads,
                ..base.clone()
            };
            let par = Chameleon::new(cfg).anonymize(&g, Method::Rsme, 17).unwrap();
            assert_eq!(serial.sigma.to_bits(), par.sigma.to_bits());
            assert_eq!(serial.eps_hat.to_bits(), par.eps_hat.to_bits());
            assert_eq!(serial.genobf_calls, par.genobf_calls);
            assert_eq!(serial.graph.num_edges(), par.graph.num_edges());
            for (a, b) in serial.graph.edges().iter().zip(par.graph.edges()) {
                assert_eq!((a.u, a.v), (b.u, b.v));
                assert_eq!(a.p.to_bits(), b.p.to_bits());
            }
        }
    }

    #[test]
    fn strip_worlds_is_bit_identical_to_dense() {
        let g = test_graph(15);
        let base = quick_config(6);
        let dense = Chameleon::new(base.clone())
            .anonymize(&g, Method::Rsme, 23)
            .unwrap();
        for strip in [1usize, 64, 500] {
            let cfg = ChameleonConfig {
                strip_worlds: strip,
                ..base.clone()
            };
            let streamed = Chameleon::new(cfg).anonymize(&g, Method::Rsme, 23).unwrap();
            assert_eq!(dense.sigma.to_bits(), streamed.sigma.to_bits());
            assert_eq!(dense.eps_hat.to_bits(), streamed.eps_hat.to_bits());
            assert_eq!(dense.genobf_calls, streamed.genobf_calls);
            assert_eq!(dense.graph.num_edges(), streamed.graph.num_edges());
            for (a, b) in dense.graph.edges().iter().zip(streamed.graph.edges()) {
                assert_eq!((a.u, a.v), (b.u, b.v));
                assert_eq!(a.p.to_bits(), b.p.to_bits(), "strip {strip}");
            }
            for (a, b) in dense.vrr.iter().zip(&streamed.vrr) {
                assert_eq!(a.to_bits(), b.to_bits(), "strip {strip}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let g = test_graph(3);
        let cham = Chameleon::new(quick_config(6));
        let a = cham.anonymize(&g, Method::Rsme, 1).unwrap();
        let b = cham.anonymize(&g, Method::Rsme, 2).unwrap();
        let same = a.graph.num_edges() == b.graph.num_edges()
            && a.graph
                .edges()
                .iter()
                .zip(b.graph.edges())
                .all(|(x, y)| (x.p - y.p).abs() < 1e-15);
        assert!(!same, "independent seeds should differ");
    }

    #[test]
    fn impossible_target_reports_failure() {
        // k greater than |V| can never be met (entropy ≤ log2 n).
        let g = test_graph(4);
        let cfg = ChameleonConfig::builder()
            .k(1000)
            .epsilon(0.0)
            .trials(1)
            .num_world_samples(60)
            .max_doublings(2)
            .sigma_tolerance(0.5)
            .build();
        let cham = Chameleon::new(cfg);
        match cham.anonymize(&g, Method::Me, 5) {
            Err(ChameleonError::NoObfuscationFound { best_eps_hat, .. }) => {
                assert!(best_eps_hat > 0.0);
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let cham = Chameleon::new(quick_config(2));
        let empty = UncertainGraph::with_nodes(0);
        assert!(matches!(
            cham.anonymize(&empty, Method::Rsme, 0),
            Err(ChameleonError::DegenerateInput(_))
        ));
        let edgeless = UncertainGraph::with_nodes(5);
        assert!(matches!(
            cham.anonymize(&edgeless, Method::Rsme, 0),
            Err(ChameleonError::DegenerateInput(_))
        ));
    }

    #[test]
    fn pre_cancelled_token_aborts_immediately() {
        let g = test_graph(13);
        let cham = Chameleon::new(quick_config(6));
        let token = CancelToken::new();
        token.cancel();
        assert!(matches!(
            cham.anonymize_cancellable(&g, Method::Rsme, 7, &token),
            Err(ChameleonError::Cancelled)
        ));
    }

    #[test]
    fn expired_deadline_aborts_the_search() {
        let g = test_graph(13);
        let cham = Chameleon::new(quick_config(6));
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        assert!(matches!(
            cham.anonymize_cancellable(&g, Method::Rsme, 7, &token),
            Err(ChameleonError::Cancelled)
        ));
    }

    #[test]
    fn uncancelled_token_is_bit_identical_to_plain_anonymize() {
        let g = test_graph(14);
        let cham = Chameleon::new(quick_config(6));
        let plain = cham.anonymize(&g, Method::Rsme, 7).unwrap();
        let tokened = cham
            .anonymize_cancellable(&g, Method::Rsme, 7, &CancelToken::new())
            .unwrap();
        assert_eq!(plain.sigma.to_bits(), tokened.sigma.to_bits());
        assert_eq!(plain.eps_hat.to_bits(), tokened.eps_hat.to_bits());
        assert_eq!(plain.graph.num_edges(), tokened.graph.num_edges());
        for (a, b) in plain.graph.edges().iter().zip(tokened.graph.edges()) {
            assert_eq!((a.u, a.v), (b.u, b.v));
            assert_eq!(a.p.to_bits(), b.p.to_bits());
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = quick_config(2);
        cfg.epsilon = 2.0;
        let g = test_graph(5);
        assert!(matches!(
            Chameleon::new(cfg).anonymize(&g, Method::Rsme, 0),
            Err(ChameleonError::Config(_))
        ));
    }

    #[test]
    fn me_variant_skips_vrr() {
        let g = test_graph(6);
        let cham = Chameleon::new(quick_config(4));
        let res = cham.anonymize(&g, Method::Me, 11).unwrap();
        assert!(res.vrr.is_empty());
        let res = cham.anonymize(&g, Method::Rs, 11).unwrap();
        assert_eq!(res.vrr.len(), g.num_nodes());
    }

    #[test]
    fn stronger_k_needs_no_less_noise() {
        let g = test_graph(7);
        let weak = Chameleon::new(quick_config(3))
            .anonymize(&g, Method::Rsme, 13)
            .unwrap();
        let strong = Chameleon::new(quick_config(20))
            .anonymize(&g, Method::Rsme, 13)
            .unwrap();
        assert!(
            strong.sigma >= weak.sigma - 0.2,
            "strong k sigma {} should not be far below weak k sigma {}",
            strong.sigma,
            weak.sigma
        );
    }

    #[test]
    fn prepare_selection_excludes_top_combined() {
        let g = test_graph(8);
        let uniq = uniqueness_scores_scaled(&g, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let ens = WorldEnsemble::sample(&g, 100, &mut rng);
        let err = edge_reliability_relevance(&g, &ens);
        let vrr = vertex_reliability_relevance(&g, &err);
        let cfg = ChameleonConfig::builder().epsilon(0.2).build();
        let (excluded, selection) = prepare_selection(&g, Method::Rsme, &uniq, &vrr, &cfg);
        assert_eq!(excluded.len(), ((0.2 / 2.0) * 80.0f64).ceil() as usize);
        assert_eq!(selection.len(), 80);
        // Excluded vertices are exactly the top combined-score ones.
        let combined: Vec<f64> = uniq.iter().zip(&vrr).map(|(u, r)| u * r).collect();
        let min_excluded = excluded
            .iter()
            .map(|&v| combined[v as usize])
            .fold(f64::INFINITY, f64::min);
        let max_included = (0..80u32)
            .filter(|v| !excluded.contains(v))
            .map(|v| combined[v as usize])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(min_excluded >= max_included - 1e-12);
    }

    #[test]
    fn zero_epsilon_keeps_everyone() {
        let g = test_graph(9);
        let uniq = uniqueness_scores_scaled(&g, 1.0);
        let cfg = ChameleonConfig::builder().epsilon(0.0).build();
        let (excluded, _) = prepare_selection(&g, Method::Me, &uniq, &[], &cfg);
        assert!(excluded.is_empty());
    }

    #[test]
    fn downward_sweep_finds_tiny_sigma_when_raw_passes() {
        // A symmetric-ish graph that already satisfies (k, ε) raw: the
        // minimum-noise answer is σ ≈ 0 and must be found even though
        // σ_init = 1 may over-noise at the first probe.
        let mut g = UncertainGraph::with_nodes(40);
        for i in 0..20u32 {
            g.add_edge(2 * i, 2 * i + 1, 0.5).unwrap();
        }
        let knowledge = AdversaryKnowledge::expected_degrees(&g);
        let raw = anonymity_check(&g, &knowledge, 4);
        assert_eq!(raw.eps_hat, 0.0, "raw graph must already pass");
        let cfg = ChameleonConfig::builder()
            .k(4)
            .epsilon(0.05)
            .trials(2)
            .num_world_samples(60)
            .sigma_tolerance(0.2)
            .build();
        let res = Chameleon::new(cfg).anonymize(&g, Method::Me, 8).unwrap();
        assert!(
            res.sigma < 0.2,
            "minimum-noise sigma should be near zero, got {}",
            res.sigma
        );
        // Utility: original probabilities barely move (white noise aside).
        let moved = res
            .graph
            .edges()
            .iter()
            .take(g.num_edges())
            .zip(g.edges())
            .filter(|(a, b)| (a.p - b.p).abs() > 0.2)
            .count();
        assert!(
            moved < g.num_edges() / 4,
            "{moved} of {} original edges moved by > 0.2",
            g.num_edges()
        );
    }

    #[test]
    fn sigma_trace_records_every_genobf_call() {
        let g = test_graph(11);
        let cham = Chameleon::new(quick_config(6));
        let res = cham.anonymize(&g, Method::Me, 21).unwrap();
        assert_eq!(res.sigma_trace.len(), res.genobf_calls);
        // Every recorded sigma is positive; eps values are in [0, 1].
        for &(s, e) in &res.sigma_trace {
            assert!(s > 0.0 && s.is_finite());
            assert!((0.0..=1.0).contains(&e));
        }
        // The final sigma appears in the trace.
        assert!(res
            .sigma_trace
            .iter()
            .any(|&(s, _)| (s - res.sigma).abs() < 1e-12));
    }

    #[test]
    fn selection_floor_keeps_critical_vertices_perturbable() {
        let g = test_graph(10);
        let uniq = uniqueness_scores_scaled(&g, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let ens = WorldEnsemble::sample(&g, 100, &mut rng);
        let err = edge_reliability_relevance(&g, &ens);
        let vrr = vertex_reliability_relevance(&g, &err);
        let cfg = ChameleonConfig::builder().epsilon(0.05).build();
        let (excluded, selection) = prepare_selection(&g, Method::Rsme, &uniq, &vrr, &cfg);
        for v in 0..g.num_nodes() as u32 {
            if !excluded.contains(&v) {
                assert!(
                    selection[v as usize] > 0.0,
                    "vertex {v} has zero selection weight"
                );
            }
        }
    }
}
