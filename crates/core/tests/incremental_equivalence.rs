//! Equivalence gates for the incremental paths (DESIGN.md §6d).
//!
//! Two layers are checked against their from-scratch counterparts:
//!
//! * the GenObf σ search with `ChameleonConfig::incremental` — bit-identical
//!   whenever the preserved-RNG-stream contract applies (a single GenObf
//!   call), and a deterministic, thread-count-invariant function of
//!   `(seed, config)` always;
//! * [`IncrementalEnsemble`] delta updates interleaved with full rebuilds
//!   over random perturbation sequences — world bits, component labels,
//!   component sizes, connected-pair counts and both ERR estimators must
//!   match a from-scratch ensemble byte for byte at 1 and 8 threads.

use chameleon_core::relevance::{
    edge_reliability_relevance_alg2_threads, edge_reliability_relevance_threads,
};
use chameleon_core::{Chameleon, ChameleonConfig, Method, ObfuscationResult};
use chameleon_reliability::{IncrementalEnsemble, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::{generators, UncertainGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_graph(seed: u64, n: usize, m: usize) -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = generators::gnm(n, m, &mut rng);
    for e in 0..g.num_edges() as u32 {
        g.set_prob(e, 0.15 + 0.7 * rng.gen::<f64>()).unwrap();
    }
    g
}

fn assert_results_bit_identical(a: &ObfuscationResult, b: &ObfuscationResult) {
    assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
    assert_eq!(a.eps_hat.to_bits(), b.eps_hat.to_bits());
    assert_eq!(a.report.unobfuscated, b.report.unobfuscated);
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (x, y) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!((x.u, x.v), (y.u, y.v));
        assert_eq!(x.p.to_bits(), y.p.to_bits());
    }
}

/// When the whole run is one GenObf call (first σ passes, tolerance ≥ 1
/// skips the bisection), the incremental toggle changes nothing: same RNG
/// stream, same trials, same winner — bit for bit.
#[test]
fn single_call_run_is_bit_identical_with_toggle_on_or_off() {
    let g = test_graph(5, 60, 140);
    let base = ChameleonConfig::builder()
        .k(4)
        .epsilon(0.3)
        .trials(4)
        .num_world_samples(60)
        .sigma_tolerance(1.0)
        .num_threads(1);
    for method in [Method::Me, Method::Rsme] {
        let off = Chameleon::new(base.clone().incremental(false).build())
            .anonymize(&g, method, 99)
            .expect("reference run should succeed");
        assert_eq!(
            off.genobf_calls, 1,
            "test premise: the whole search is one GenObf call"
        );
        let on = Chameleon::new(base.clone().incremental(true).build())
            .anonymize(&g, method, 99)
            .expect("incremental run should succeed");
        assert_eq!(on.genobf_calls, 1);
        assert_results_bit_identical(&off, &on);
    }
}

/// Multi-probe incremental runs are deterministic in `(seed, config)` and
/// invariant to the worker-thread count.
#[test]
fn incremental_runs_are_reproducible_and_thread_count_invariant() {
    let g = test_graph(8, 50, 120);
    let cfg = |threads: usize| {
        ChameleonConfig::builder()
            .k(6)
            .epsilon(0.25)
            .trials(3)
            .num_world_samples(50)
            .sigma_tolerance(0.2)
            .num_threads(threads)
            .incremental(true)
            .build()
    };
    let run1 = Chameleon::new(cfg(1))
        .anonymize(&g, Method::Rsme, 17)
        .unwrap();
    let run8 = Chameleon::new(cfg(8))
        .anonymize(&g, Method::Rsme, 17)
        .unwrap();
    let run1b = Chameleon::new(cfg(1))
        .anonymize(&g, Method::Rsme, 17)
        .unwrap();
    assert_eq!(run1.genobf_calls, run8.genobf_calls);
    assert_eq!(run1.genobf_calls, run1b.genobf_calls);
    assert_eq!(run1.sigma_trace, run8.sigma_trace);
    assert_eq!(run1.sigma_trace, run1b.sigma_trace);
    assert_results_bit_identical(&run1, &run8);
    assert_results_bit_identical(&run1, &run1b);
}

/// The incremental search must still find obfuscations the plain one does:
/// both settings succeed on the same workload and report passing ε̂.
#[test]
fn incremental_search_succeeds_where_plain_search_does() {
    let g = test_graph(21, 70, 160);
    for incremental in [false, true] {
        let cfg = ChameleonConfig::builder()
            .k(5)
            .epsilon(0.2)
            .trials(3)
            .num_world_samples(60)
            .incremental(incremental)
            .build();
        let res = Chameleon::new(cfg).anonymize(&g, Method::Rsme, 3).unwrap();
        assert!(res.eps_hat <= 0.2, "incremental={incremental}");
        assert_eq!(res.graph.num_nodes(), g.num_nodes());
    }
}

// ---------------------------------------------------------------------------
// IncrementalEnsemble: random interleavings vs from-scratch (satellite 3).
// ---------------------------------------------------------------------------

fn assert_ensembles_identical(got: &WorldEnsemble, want: &WorldEnsemble) {
    assert_eq!(got.len(), want.len());
    for w in 0..want.len() {
        assert_eq!(got.world(w).words(), want.world(w).words(), "world {w}");
        assert_eq!(got.labels(w), want.labels(w), "labels {w}");
        assert_eq!(got.component_sizes(w), want.component_sizes(w), "sizes {w}");
        assert_eq!(got.connected_pairs(w), want.connected_pairs(w), "pairs {w}");
    }
}

fn bits_of(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Interleave delta updates and full CRN rebuilds over a random
    /// perturbation sequence. After every step, the maintained ensembles at
    /// 1 and 8 threads must match a from-scratch build from the same
    /// uniforms byte for byte — world bits, labels, sizes, pairs — and both
    /// ERR estimators evaluated on them must agree bitwise too.
    #[test]
    fn interleaved_updates_match_from_scratch(
        graph_seed in 0u64..1_000,
        ops in proptest::collection::vec(
            (
                any::<bool>(), // true = full rebuild instead of delta update
                proptest::collection::vec((any::<u8>(), 0.0f64..=1.0), 1..6),
            ),
            1..5,
        ),
    ) {
        let mut current = test_graph(graph_seed, 14, 20);
        let m = current.num_edges() as u32;
        let uniforms = {
            let seq = SeedSequence::new(graph_seed ^ 0xABCD);
            chameleon_reliability::crn_uniform_matrix(
                16,
                m as usize,
                &mut seq.rng("crn-uniforms"),
            )
        };
        let mut inc1 = IncrementalEnsemble::from_uniform_matrix(&current, uniforms.clone(), 1);
        let mut inc8 = IncrementalEnsemble::from_uniform_matrix(&current, uniforms.clone(), 8);

        for (full_rebuild, raw_changes) in ops {
            let changes: Vec<(u32, f64)> = raw_changes
                .iter()
                .map(|&(i, p)| (u32::from(i) % m, p))
                .collect();
            for &(e, p) in &changes {
                current.set_prob(e, p).unwrap();
            }
            if full_rebuild {
                inc1 = IncrementalEnsemble::from_uniform_matrix(&current, uniforms.clone(), 1);
                inc8 = IncrementalEnsemble::from_uniform_matrix(&current, uniforms.clone(), 8);
            } else {
                inc1.update_edges(&changes, 1);
                inc8.update_edges(&changes, 8);
            }

            let scratch = WorldEnsemble::from_uniform_matrix(&current, &uniforms);
            assert_ensembles_identical(inc1.ensemble(), &scratch);
            assert_ensembles_identical(inc8.ensemble(), &scratch);

            for threads in [1usize, 8] {
                let err_inc =
                    edge_reliability_relevance_threads(&current, inc1.ensemble(), threads);
                let err_scratch =
                    edge_reliability_relevance_threads(&current, &scratch, threads);
                prop_assert_eq!(bits_of(&err_inc), bits_of(&err_scratch));
                let alg2_inc =
                    edge_reliability_relevance_alg2_threads(&current, inc8.ensemble(), threads);
                let alg2_scratch =
                    edge_reliability_relevance_alg2_threads(&current, &scratch, threads);
                prop_assert_eq!(bits_of(&alg2_inc), bits_of(&alg2_scratch));
            }
        }
    }
}
