//! Allocation guard for the Monte-Carlo kernel: building an N-world
//! ensemble and scanning it with the coupled ERR estimator must allocate
//! O(chunks), not O(worlds). A counting `#[global_allocator]` measures the
//! exact heap-allocation count of the serial (threads = 1) path; the
//! historical one-`Vec`-per-world layout allocated ≥ 4·N and would trip
//! the bound immediately.
//!
//! One `#[test]` only: the counter is process-global, so concurrent tests
//! in this binary would pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use chameleon_core::relevance::edge_reliability_relevance_threads;
use chameleon_reliability::{WorldEnsemble, WORLD_CHUNK};
use chameleon_ugraph::UncertainGraph;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    ALLOCS.load(Ordering::Relaxed)
}

fn test_graph() -> UncertainGraph {
    // ~90 edges on 30 nodes so worlds span multiple bitset words and the
    // per-world label/size buffers are non-trivial.
    let n = 30u32;
    let mut g = UncertainGraph::with_nodes(n as usize);
    let mut p = 0.15f64;
    for u in 0..n {
        for v in (u + 1)..n {
            if (u * 3 + v) % 7 < 2 {
                g.add_edge(u, v, p).unwrap();
                p = (p + 0.11) % 1.0;
            }
        }
    }
    g
}

#[test]
fn kernel_allocations_scale_with_chunks_not_worlds() {
    let g = test_graph();
    let n_worlds = 16 * WORLD_CHUNK; // 512 worlds, 16 sampling chunks
    let chunks = n_worlds / WORLD_CHUNK;

    // Warm-up: registers obs sites, faults in allocator metadata, and
    // gives growable arenas (component-size arena, label matrix) their
    // worst-case first-build growth outside the measured window.
    let warm = WorldEnsemble::sample_seeded(&g, n_worlds, 7, 1);
    let _ = edge_reliability_relevance_threads(&g, &warm, 1);
    drop(warm);

    let before_build = allocs();
    let ens = WorldEnsemble::sample_seeded(&g, n_worlds, 7, 1);
    let build_allocs = allocs() - before_build;

    let before_err = allocs();
    let err = edge_reliability_relevance_threads(&g, &ens, 1);
    let err_allocs = allocs() - before_err;

    assert_eq!(err.len(), g.num_edges());

    // O(chunks) + constant, with headroom for Vec growth doublings of the
    // chunk-concatenated arenas. The old layout allocated ≥ 4 per world
    // (world bitset + labels + sizes + adjacency scratch) — over 2048 here.
    let build_budget = 12 * chunks + 64;
    assert!(
        build_allocs <= build_budget,
        "ensemble build made {build_allocs} allocations \
         (budget {build_budget} for {chunks} chunks); kernel regressed to per-world allocation?"
    );
    assert!(
        build_allocs < n_worlds,
        "ensemble build made {build_allocs} allocations for {n_worlds} worlds"
    );

    // The ERR scan folds ERR_WORLD_CHUNK=64-world chunks: 8 chunks here.
    let err_chunks = n_worlds.div_ceil(64);
    let err_budget = 12 * err_chunks + 32;
    assert!(
        err_allocs <= err_budget,
        "coupled ERR made {err_allocs} allocations \
         (budget {err_budget} for {err_chunks} chunks)"
    );
    assert!(
        err_allocs < n_worlds,
        "coupled ERR made {err_allocs} allocations for {n_worlds} worlds"
    );
}
