//! Allocation guard for the Monte-Carlo kernel: building an N-world
//! ensemble and scanning it with the coupled ERR estimator must allocate
//! O(chunks), not O(worlds). The counting `#[global_allocator]` from
//! `chameleon_stats::alloc_guard` measures the exact heap-allocation count
//! of the serial (threads = 1) path; the historical one-`Vec`-per-world
//! layout allocated ≥ 4·N and would trip the bound immediately.
//!
//! One `#[test]` only: the counters are process-global, so concurrent
//! tests in this binary would pollute the deltas.

use chameleon_core::relevance::{
    edge_reliability_relevance_streamed, edge_reliability_relevance_threads,
};
use chameleon_reliability::{EnsembleStream, WorldEnsemble, WORLD_CHUNK};
use chameleon_stats::alloc_guard::{self, CountingAlloc};
use chameleon_ugraph::UncertainGraph;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> usize {
    alloc_guard::alloc_calls()
}

fn test_graph() -> UncertainGraph {
    // ~90 edges on 30 nodes so worlds span multiple bitset words and the
    // per-world label/size buffers are non-trivial.
    let n = 30u32;
    let mut g = UncertainGraph::with_nodes(n as usize);
    let mut p = 0.15f64;
    for u in 0..n {
        for v in (u + 1)..n {
            if (u * 3 + v) % 7 < 2 {
                g.add_edge(u, v, p).unwrap();
                p = (p + 0.11) % 1.0;
            }
        }
    }
    g
}

#[test]
fn kernel_allocations_scale_with_chunks_not_worlds() {
    let g = test_graph();
    let n_worlds = 16 * WORLD_CHUNK; // 512 worlds, 16 sampling chunks
    let chunks = n_worlds / WORLD_CHUNK;

    // Warm-up: registers obs sites, faults in allocator metadata, and
    // gives growable arenas (component-size arena, label matrix) their
    // worst-case first-build growth outside the measured window.
    let warm = WorldEnsemble::sample_seeded(&g, n_worlds, 7, 1);
    let _ = edge_reliability_relevance_threads(&g, &warm, 1);
    drop(warm);

    let before_build = allocs();
    let ens = WorldEnsemble::sample_seeded(&g, n_worlds, 7, 1);
    let build_allocs = allocs() - before_build;

    let before_err = allocs();
    let err = edge_reliability_relevance_threads(&g, &ens, 1);
    let err_allocs = allocs() - before_err;

    assert_eq!(err.len(), g.num_edges());

    // O(chunks) + constant, with headroom for Vec growth doublings of the
    // chunk-concatenated arenas. The old layout allocated ≥ 4 per world
    // (world bitset + labels + sizes + adjacency scratch) — over 2048 here.
    let build_budget = 12 * chunks + 64;
    assert!(
        build_allocs <= build_budget,
        "ensemble build made {build_allocs} allocations \
         (budget {build_budget} for {chunks} chunks); kernel regressed to per-world allocation?"
    );
    assert!(
        build_allocs < n_worlds,
        "ensemble build made {build_allocs} allocations for {n_worlds} worlds"
    );

    // The ERR scan folds ERR_WORLD_CHUNK=64-world chunks: 8 chunks here.
    let err_chunks = n_worlds.div_ceil(64);
    let err_budget = 12 * err_chunks + 32;
    assert!(
        err_allocs <= err_budget,
        "coupled ERR made {err_allocs} allocations \
         (budget {err_budget} for {err_chunks} chunks)"
    );
    assert!(
        err_allocs < n_worlds,
        "coupled ERR made {err_allocs} allocations for {n_worlds} worlds"
    );

    // Out-of-core path (DESIGN.md §12): the ensemble gauge must show the
    // streamed analysis peaking far below the dense footprint while
    // producing the bit-identical ERR vector.
    drop(ens);
    alloc_guard::reset_ensemble_peak();
    let dense = WorldEnsemble::sample_seeded(&g, n_worlds, 7, 1);
    let dense_peak = alloc_guard::ensemble_peak_bytes();
    let dense_err = edge_reliability_relevance_threads(&g, &dense, 1);
    drop(dense);
    alloc_guard::reset_ensemble_peak();
    let stream = EnsembleStream::sample(&g, n_worlds, 7, 1, 64).expect("no ceiling configured");
    let streamed_err = edge_reliability_relevance_streamed(&g, &stream, 1).expect("no ceiling");
    let stream_peak = alloc_guard::ensemble_peak_bytes();
    assert!(
        stream_peak < dense_peak / 2,
        "streamed peak {stream_peak} bytes should undercut half the dense \
         peak {dense_peak} bytes at 512 worlds / 64-world strips"
    );
    for (a, b) in dense_err.iter().zip(&streamed_err) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
