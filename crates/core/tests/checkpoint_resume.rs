//! End-to-end pinning of GenObf checkpoint/resume (DESIGN.md §11): a σ
//! search interrupted at *any* probe boundary and resumed from the
//! checkpoint emitted there must produce bit-identical output to the
//! uninterrupted run, while actually skipping the recorded probes.

use chameleon_core::{
    Chameleon, ChameleonConfig, ChameleonError, CheckpointHook, Method, ObfuscationResult,
    SearchCheckpoint,
};
use chameleon_ugraph::{generators, UncertainGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

fn test_graph(seed: u64) -> UncertainGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = generators::gnm(60, 140, &mut rng);
    for e in 0..g.num_edges() as u32 {
        let p = 0.2 + 0.6 * ((e % 7) as f64 / 7.0);
        g.set_prob(e, p).unwrap();
    }
    g
}

fn quick_config(incremental: bool) -> ChameleonConfig {
    ChameleonConfig::builder()
        .k(6)
        .epsilon(0.1)
        .trials(2)
        .num_world_samples(60)
        .sigma_tolerance(0.2)
        .incremental(incremental)
        .build()
}

/// A hook that stores every emitted checkpoint (the durability layer's
/// journal, reduced to a Vec).
fn recording_hook() -> (CheckpointHook, Arc<Mutex<Vec<SearchCheckpoint>>>) {
    let store: Arc<Mutex<Vec<SearchCheckpoint>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_store = Arc::clone(&store);
    let hook = CheckpointHook::new(move |cp: &SearchCheckpoint| {
        sink_store.lock().unwrap().push(cp.clone());
    });
    (hook, store)
}

fn assert_bit_identical(a: &ObfuscationResult, b: &ObfuscationResult) {
    assert_eq!(a.sigma.to_bits(), b.sigma.to_bits());
    assert_eq!(a.eps_hat.to_bits(), b.eps_hat.to_bits());
    assert_eq!(a.genobf_calls, b.genobf_calls);
    assert_eq!(a.sigma_trace.len(), b.sigma_trace.len());
    for (x, y) in a.sigma_trace.iter().zip(&b.sigma_trace) {
        assert_eq!(x.0.to_bits(), y.0.to_bits());
        assert_eq!(x.1.to_bits(), y.1.to_bits());
    }
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    for (x, y) in a.graph.edges().iter().zip(b.graph.edges()) {
        assert_eq!((x.u, x.v), (y.u, y.v));
        assert_eq!(x.p.to_bits(), y.p.to_bits());
    }
    assert_eq!(a.report.eps_hat.to_bits(), b.report.eps_hat.to_bits());
    assert_eq!(a.report.unobfuscated, b.report.unobfuscated);
}

/// Runs `(graph, method, seed, config)` once uninterrupted, then resumes
/// from every emitted checkpoint (each is a probe-boundary snapshot, so
/// together they cover interrupting after probe 1, 2, …, n) and asserts
/// bit-identical output plus actual probe skipping.
fn exhaustive_resume_check(graph: &UncertainGraph, method: Method, seed: u64, incremental: bool) {
    let (hook, store) = recording_hook();
    let mut cfg = quick_config(incremental);
    cfg.checkpoint = Some(hook);
    let baseline = Chameleon::new(cfg.clone())
        .anonymize(graph, method, seed)
        .expect("baseline run must succeed");
    assert_eq!(baseline.replayed_probes, 0);

    // A sink must only observe: same output as a hookless run.
    let plain = Chameleon::new(quick_config(incremental))
        .anonymize(graph, method, seed)
        .expect("plain run must succeed");
    assert_bit_identical(&plain, &baseline);

    let checkpoints = store.lock().unwrap().clone();
    assert_eq!(
        checkpoints.len(),
        baseline.genobf_calls,
        "one checkpoint per live probe"
    );
    for (i, cp) in checkpoints.iter().enumerate() {
        assert_eq!(cp.probes.len(), i + 1, "checkpoints are cumulative");
        // Resume through the real persistence path: serialize + parse.
        let restored = SearchCheckpoint::parse(&cp.to_json()).expect("round-trip");
        assert_eq!(&restored, cp);
        assert!(restored.matches(graph, method, seed, &cfg));
        let mut resume_cfg = quick_config(incremental);
        resume_cfg.resume_from = Some(restored);
        let resumed = Chameleon::new(resume_cfg)
            .anonymize(graph, method, seed)
            .expect("resumed run must succeed");
        assert_eq!(
            resumed.replayed_probes,
            i + 1,
            "every recorded probe must be skipped, not recomputed"
        );
        assert_bit_identical(&baseline, &resumed);
    }
}

#[test]
fn resume_at_every_probe_boundary_is_bit_identical() {
    let g = test_graph(41);
    exhaustive_resume_check(&g, Method::Me, 7, false);
}

#[test]
fn resume_at_every_probe_boundary_is_bit_identical_incremental() {
    let g = test_graph(41);
    exhaustive_resume_check(&g, Method::Me, 7, true);
}

#[test]
fn resume_covers_reliability_oriented_methods() {
    let g = test_graph(42);
    exhaustive_resume_check(&g, Method::Rsme, 11, false);
}

#[test]
fn full_checkpoint_resume_materializes_the_replayed_winner() {
    // Resuming from the *final* checkpoint replays every probe including
    // the winner, exercising the lazy winner-materialization path.
    let g = test_graph(43);
    let (hook, store) = recording_hook();
    let mut cfg = quick_config(true);
    cfg.checkpoint = Some(hook);
    let baseline = Chameleon::new(cfg)
        .anonymize(&g, Method::Me, 3)
        .expect("baseline");
    let last = store.lock().unwrap().last().cloned().expect("checkpoints");
    assert_eq!(last.probes.len(), baseline.genobf_calls);
    let mut resume_cfg = quick_config(true);
    resume_cfg.resume_from = Some(last);
    let resumed = Chameleon::new(resume_cfg)
        .anonymize(&g, Method::Me, 3)
        .expect("resumed");
    assert_eq!(resumed.replayed_probes, baseline.genobf_calls);
    assert_bit_identical(&baseline, &resumed);
}

#[test]
fn foreign_checkpoint_is_rejected() {
    let g = test_graph(44);
    let (hook, store) = recording_hook();
    let mut cfg = quick_config(false);
    cfg.checkpoint = Some(hook);
    Chameleon::new(cfg.clone())
        .anonymize(&g, Method::Me, 5)
        .expect("recording run");
    let cp = store.lock().unwrap().first().cloned().expect("checkpoint");
    // Same graph and config, different seed → different trajectory.
    assert!(!cp.matches(&g, Method::Me, 6, &cfg));
    let mut resume_cfg = quick_config(false);
    resume_cfg.resume_from = Some(cp);
    match Chameleon::new(resume_cfg).anonymize(&g, Method::Me, 6) {
        Err(ChameleonError::CheckpointInvalid(_)) => {}
        other => panic!("expected CheckpointInvalid, got {other:?}"),
    }
}

#[test]
fn config_change_invalidates_checkpoint() {
    let g = test_graph(45);
    let (hook, store) = recording_hook();
    let mut cfg = quick_config(false);
    cfg.checkpoint = Some(hook);
    Chameleon::new(cfg)
        .anonymize(&g, Method::Me, 5)
        .expect("recording run");
    let cp = store.lock().unwrap().first().cloned().expect("checkpoint");
    let mut other = quick_config(false);
    other.k += 1;
    assert!(!cp.matches(&g, Method::Me, 5, &other));
    other.resume_from = Some(cp);
    assert!(matches!(
        Chameleon::new(other).anonymize(&g, Method::Me, 5),
        Err(ChameleonError::CheckpointInvalid(_))
    ));
}

#[test]
fn tampered_trajectory_falls_back_to_live_probes() {
    // A record whose σ bits disagree with the deterministic trajectory
    // must not be trusted: the remainder of the queue is dropped and the
    // search recomputes live — same final bytes, nothing skipped after
    // the divergence point.
    let g = test_graph(46);
    let (hook, store) = recording_hook();
    let mut cfg = quick_config(false);
    cfg.checkpoint = Some(hook);
    let baseline = Chameleon::new(cfg)
        .anonymize(&g, Method::Me, 9)
        .expect("baseline");
    let mut cp = store.lock().unwrap().last().cloned().expect("checkpoint");
    cp.probes[0].sigma *= 1.5;
    let mut resume_cfg = quick_config(false);
    resume_cfg.resume_from = Some(cp);
    let resumed = Chameleon::new(resume_cfg)
        .anonymize(&g, Method::Me, 9)
        .expect("tampered resume still completes");
    assert_eq!(resumed.replayed_probes, 0, "diverged records are dropped");
    assert_bit_identical(&baseline, &resumed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant, fuzzed: for random (graph seed, search
    /// seed, incremental flag, interrupt point), resuming mid-search is
    /// bit-identical to never having stopped.
    #[test]
    fn prop_resume_is_bit_identical(
        graph_seed in 0u64..500,
        seed in 0u64..500,
        incremental in any::<bool>(),
        cut in 0usize..64,
    ) {
        let g = test_graph(graph_seed);
        let (hook, store) = recording_hook();
        let mut cfg = quick_config(incremental);
        cfg.checkpoint = Some(hook);
        let Ok(baseline) = Chameleon::new(cfg).anonymize(&g, Method::Me, seed) else {
            // Privacy target unreachable for this draw — nothing to resume.
            return Ok(());
        };
        let checkpoints = store.lock().unwrap().clone();
        prop_assert_eq!(checkpoints.len(), baseline.genobf_calls);
        let cp = checkpoints[cut % checkpoints.len()].clone();
        let replayed = cp.probes.len();
        let restored = SearchCheckpoint::parse(&cp.to_json()).unwrap();
        let mut resume_cfg = quick_config(incremental);
        resume_cfg.resume_from = Some(restored);
        let resumed = Chameleon::new(resume_cfg).anonymize(&g, Method::Me, seed).unwrap();
        prop_assert_eq!(resumed.replayed_probes, replayed);
        assert_bit_identical(&baseline, &resumed);
    }
}
