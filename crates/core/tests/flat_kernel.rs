//! ERR word-scan equivalence: both estimators now walk present/absent
//! edges by bitset word, and the result must be bit-for-bit identical to
//! the historical per-edge `contains` skip loops. The reference loops are
//! reproduced here against the public ensemble accessors.

use chameleon_core::relevance::{
    edge_reliability_relevance_alg2_threads, edge_reliability_relevance_threads,
};
use chameleon_reliability::WorldEnsemble;
use chameleon_ugraph::UncertainGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Worlds per accumulation chunk of the parallel ERR estimators (must
/// mirror `ERR_WORLD_CHUNK` in `core::relevance`): partials are folded in
/// chunk order, so the reference must regroup its sums identically to be
/// bit-comparable.
const ERR_WORLD_CHUNK: usize = 64;

fn chunk_ranges(n: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    (0..n.div_ceil(ERR_WORLD_CHUNK))
        .map(move |c| (c * ERR_WORLD_CHUNK)..(((c + 1) * ERR_WORLD_CHUNK).min(n)))
}

/// Pre-rewrite Algorithm 2 inner loop: per-edge `contains` over every
/// edge, chunked accumulation folded in chunk order.
fn alg2_reference(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> Vec<f64> {
    let m = graph.num_edges();
    let n_worlds = ensemble.len();
    let mut cc_with = vec![0.0f64; m];
    let mut count_with = vec![0u32; m];
    let mut cc_total = 0.0f64;
    for range in chunk_ranges(n_worlds) {
        let mut part_cc_with = vec![0.0f64; m];
        let mut part_count = vec![0u32; m];
        let mut part_total = 0.0f64;
        for w in range {
            let world = ensemble.world(w);
            let cc = ensemble.connected_pairs(w) as f64;
            part_total += cc;
            for e in 0..m as u32 {
                if world.contains(e) {
                    part_cc_with[e as usize] += cc;
                    part_count[e as usize] += 1;
                }
            }
        }
        for e in 0..m {
            cc_with[e] += part_cc_with[e];
            count_with[e] += part_count[e];
        }
        cc_total += part_total;
    }
    (0..m)
        .map(|e| {
            let n_e = count_with[e];
            let n_not = n_worlds as u32 - n_e;
            if n_e == 0 || n_not == 0 {
                return 0.0;
            }
            let mean_with = cc_with[e] / n_e as f64;
            let mean_without = (cc_total - cc_with[e]) / n_not as f64;
            (mean_with - mean_without).max(0.0)
        })
        .collect()
}

/// Pre-rewrite coupled estimator inner loop: per-edge `contains` skip loop
/// over the `Edge` array, chunked accumulation folded in chunk order.
fn coupled_reference(graph: &UncertainGraph, ensemble: &WorldEnsemble) -> Vec<f64> {
    let m = graph.num_edges();
    let edges = graph.edges();
    let mut sum = vec![0.0f64; m];
    let mut count = vec![0u32; m];
    for range in chunk_ranges(ensemble.len()) {
        let mut part_sum = vec![0.0f64; m];
        let mut part_count = vec![0u32; m];
        for w in range {
            let world = ensemble.world(w);
            let labels = ensemble.labels(w);
            let sizes = ensemble.component_sizes(w);
            for (e, edge) in edges.iter().enumerate() {
                if world.contains(e as u32) {
                    continue;
                }
                part_count[e] += 1;
                let (lu, lv) = (labels[edge.u as usize], labels[edge.v as usize]);
                if lu != lv {
                    part_sum[e] += sizes[lu as usize] as f64 * sizes[lv as usize] as f64;
                }
            }
        }
        for e in 0..m {
            sum[e] += part_sum[e];
            count[e] += part_count[e];
        }
    }
    (0..m)
        .map(|e| {
            if count[e] == 0 {
                0.0
            } else {
                sum[e] / count[e] as f64
            }
        })
        .collect()
}

fn to_bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn check(graph: &UncertainGraph, n_worlds: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ens = WorldEnsemble::sample(graph, n_worlds, &mut rng);
    let ref_alg2 = alg2_reference(graph, &ens);
    let ref_coupled = coupled_reference(graph, &ens);
    for threads in [1, 2, 4] {
        prop_assert_bits(
            &edge_reliability_relevance_alg2_threads(graph, &ens, threads),
            &ref_alg2,
            "alg2",
        );
        prop_assert_bits(
            &edge_reliability_relevance_threads(graph, &ens, threads),
            &ref_coupled,
            "coupled",
        );
    }
}

fn prop_assert_bits(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(to_bits(got), to_bits(want), "{what} drifted from reference");
}

fn two_clusters() -> UncertainGraph {
    let mut g = UncertainGraph::with_nodes(8);
    for &(u, v) in &[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)] {
        g.add_edge(u, v, 0.9).unwrap();
    }
    for &(u, v) in &[(4, 5), (5, 6), (6, 7), (4, 6), (5, 7), (4, 7)] {
        g.add_edge(u, v, 0.9).unwrap();
    }
    g.add_edge(3, 4, 0.5).unwrap();
    g
}

#[test]
fn word_scan_matches_reference_on_clusters() {
    // Ragged accumulation tail: not a multiple of ERR_WORLD_CHUNK.
    check(&two_clusters(), 2 * ERR_WORLD_CHUNK + 17, 1);
}

#[test]
fn word_scan_matches_reference_with_deterministic_edges() {
    let mut g = UncertainGraph::with_nodes(5);
    g.add_edge(0, 1, 1.0).unwrap();
    g.add_edge(1, 2, 0.0).unwrap();
    g.add_edge(2, 3, 0.5).unwrap();
    g.add_edge(3, 4, 0.7).unwrap();
    check(&g, ERR_WORLD_CHUNK + 5, 2);
}

#[test]
fn word_scan_matches_reference_on_empty_graph() {
    let g = UncertainGraph::with_nodes(4);
    check(&g, 10, 3);
}

#[test]
fn word_scan_matches_reference_past_a_word_boundary() {
    // More than 64 edges: the absent-edge scan must mask the tail word
    // correctly (edges ≥ m never counted) and the present-edge scan must
    // index across word boundaries.
    let n = 30u32;
    let mut g = UncertainGraph::with_nodes(n as usize);
    let mut p = 0.05f64;
    for u in 0..n {
        for v in (u + 1)..n {
            if (u * 3 + v) % 7 < 2 {
                g.add_edge(u, v, p).unwrap();
                p = (p + 0.17) % 1.0;
            }
        }
    }
    assert!(
        g.num_edges() > 64,
        "need multi-word worlds, got {}",
        g.num_edges()
    );
    check(&g, ERR_WORLD_CHUNK + 9, 4);
}

fn arb_graph() -> impl Strategy<Value = UncertainGraph> {
    (
        2usize..10,
        proptest::collection::vec((0u8..4, 0.0f64..1.0), 0..20),
    )
        .prop_map(|(n, edge_specs)| {
            let mut g = UncertainGraph::with_nodes(n);
            for (i, (kind, p)) in edge_specs.into_iter().enumerate() {
                let u = (i % n) as u32;
                let v = ((i * 5 + 1 + kind as usize) % n) as u32;
                if u == v || g.has_edge(u, v) {
                    continue;
                }
                let prob = match kind {
                    0 => 0.0,
                    1 => 1.0,
                    _ => p,
                };
                g.add_edge(u, v, prob).unwrap();
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn word_scan_matches_reference_on_random_graphs(
        g in arb_graph(),
        seed in 0u64..1000,
        n_worlds in 1usize..(ERR_WORLD_CHUNK + 40),
    ) {
        check(&g, n_worlds, seed);
    }
}
