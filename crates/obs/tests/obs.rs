//! Integration tests for the observability layer: concurrent recording,
//! histogram bucket boundaries, snapshot stability and the runtime
//! kill-switch.
//!
//! All tests share one process-wide registry, so every test uses metric
//! names under its own `test.<name>.` prefix and only asserts on those.
//! The kill-switch test takes the write side of a process-wide `RwLock`
//! (every other test holds the read side) so it cannot disable recording
//! under a concurrently running test.

use std::sync::RwLock;

static ENABLED_GATE: RwLock<()> = RwLock::new(());

/// True when recording is compiled in AND currently enabled. Under
/// `--no-default-features` every site is inert and counters stay 0; tests
/// then only check that the API is a well-behaved no-op.
fn obs_on() -> bool {
    chameleon_obs::is_enabled()
}

#[test]
fn concurrent_recording_from_scoped_threads() {
    let _gate = ENABLED_GATE.read().unwrap();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 1000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..PER_THREAD {
                    chameleon_obs::counter!("test.concurrent.counter").add(1);
                    chameleon_obs::record_value!("test.concurrent.values", i);
                    let _span = chameleon_obs::span!("test.concurrent.span");
                }
            });
        }
    });
    let snap = chameleon_obs::snapshot();
    if !obs_on() {
        assert_eq!(snap.counter("test.concurrent.counter"), 0);
        return;
    }
    assert_eq!(
        snap.counter("test.concurrent.counter"),
        THREADS as u64 * PER_THREAD
    );
    let span = snap.span("test.concurrent.span").expect("span recorded");
    assert_eq!(span.count, THREADS as u64 * PER_THREAD);
    assert!(span.min_ns <= span.max_ns);
    assert!(span.total_ns >= span.max_ns);
    assert_eq!(span.hist.total(), span.count);
    let hist = snap.histogram("test.concurrent.values").expect("histogram");
    assert_eq!(hist.total(), THREADS as u64 * PER_THREAD);
    // Σ 0..1000 per thread.
    assert_eq!(
        hist.sum(),
        THREADS as u128 * (PER_THREAD as u128 * (PER_THREAD as u128 - 1) / 2)
    );
}

#[test]
fn histogram_bucket_boundaries() {
    let _gate = ENABLED_GATE.read().unwrap();
    for x in [0u64, 1, 2, 3, 4, 7, 8, 1024, u64::MAX] {
        chameleon_obs::record_value!("test.buckets.values", x);
    }
    let snap = chameleon_obs::snapshot();
    if !obs_on() {
        assert!(snap.histogram("test.buckets.values").is_none());
        return;
    }
    let hist = snap.histogram("test.buckets.values").expect("histogram");
    // Log₂ geometry: bucket 0 holds exact zeros, bucket i ≥ 1 holds
    // [2^(i-1), 2^i).
    let buckets = hist.nonzero_buckets();
    let expected = [
        (0u64, 1u64, 1u64),     // 0
        (1, 2, 1),              // 1
        (2, 4, 2),              // 2, 3
        (4, 8, 2),              // 4, 7
        (8, 16, 1),             // 8
        (1024, 2048, 1),        // 1024
        (1 << 63, u64::MAX, 1), // u64::MAX (top bucket clamps hi)
    ];
    assert_eq!(buckets, expected);
    assert_eq!(hist.total(), 9);
}

#[test]
fn snapshot_non_timing_fields_are_run_stable() {
    let _gate = ENABLED_GATE.read().unwrap();
    // The same workload executed twice must contribute identical
    // non-timing values (counts, histogram buckets) each time; only the
    // nanosecond fields may differ between runs.
    let workload = || {
        for i in 0..50u64 {
            chameleon_obs::counter!("test.stability.counter").add(2);
            chameleon_obs::record_value!("test.stability.values", i % 5);
            let _span = chameleon_obs::span!("test.stability.span");
        }
    };
    workload();
    let first = chameleon_obs::snapshot();
    workload();
    let second = chameleon_obs::snapshot();
    if !obs_on() {
        assert_eq!(first.counter("test.stability.counter"), 0);
        return;
    }
    assert_eq!(first.counter("test.stability.counter"), 100);
    assert_eq!(second.counter("test.stability.counter"), 200);
    let s1 = first.span("test.stability.span").unwrap();
    let s2 = second.span("test.stability.span").unwrap();
    assert_eq!(s1.count, 50);
    assert_eq!(s2.count, 100);
    let h1 = first.histogram("test.stability.values").unwrap();
    let h2 = second.histogram("test.stability.values").unwrap();
    assert_eq!(h1.total() * 2, h2.total());
    assert_eq!(h1.sum() * 2, h2.sum());
    for (a, b) in h1.counts().iter().zip(h2.counts()) {
        assert_eq!(a * 2, *b);
    }
}

#[test]
fn snapshot_json_is_deterministic_for_fixed_state() {
    let _gate = ENABLED_GATE.read().unwrap();
    chameleon_obs::counter!("test.json.counter").add(7);
    // Two renderings of the same registry state must agree byte-for-byte
    // (sorted keys, fixed float formatting) apart from metrics other tests
    // are concurrently bumping — so render one *snapshot* twice instead of
    // snapshotting twice.
    let snap = chameleon_obs::snapshot();
    assert_eq!(snap.to_json(), snap.to_json());
    if obs_on() {
        assert!(snap.to_json().contains("\"test.json.counter\": "));
        assert!(snap.to_json().contains("\"recording_compiled_in\": true"));
    } else {
        assert!(snap.to_json().contains("\"recording_compiled_in\": false"));
    }
}

#[test]
fn kill_switch_blocks_recording() {
    // Write side: no other test may observe the disabled window.
    let _gate = ENABLED_GATE.write().unwrap();
    let prev = chameleon_obs::set_enabled(false);
    chameleon_obs::counter!("test.killswitch.counter").add(5);
    {
        let _span = chameleon_obs::span!("test.killswitch.span");
    }
    let off = chameleon_obs::snapshot();
    assert_eq!(off.counter("test.killswitch.counter"), 0);
    assert!(off
        .span("test.killswitch.span")
        .map(|s| s.count == 0)
        .unwrap_or(true));
    chameleon_obs::set_enabled(true);
    chameleon_obs::counter!("test.killswitch.counter").add(5);
    let on = chameleon_obs::snapshot();
    if obs_on() {
        assert_eq!(on.counter("test.killswitch.counter"), 5);
    } else {
        assert_eq!(on.counter("test.killswitch.counter"), 0);
    }
    chameleon_obs::set_enabled(prev);
}

#[test]
fn scheduler_observer_reports_chunks() {
    let _gate = ENABLED_GATE.read().unwrap();
    // Touch the registry so the bridge observer is installed, then run a
    // parallel map; the scheduler counters must move (when recording).
    let before = chameleon_obs::snapshot();
    let out = chameleon_stats::parallel::map_chunks(64, 8, 2, |_, range| {
        range.map(|i| i * 2).collect::<Vec<_>>()
    });
    assert_eq!(out.into_iter().flatten().count(), 64);
    let after = chameleon_obs::snapshot();
    if !obs_on() {
        assert_eq!(after.counter("parallel.chunks_executed"), 0);
        return;
    }
    // ≥ because other tests may run parallel maps concurrently.
    assert!(
        after.counter("parallel.chunks_executed") >= before.counter("parallel.chunks_executed") + 8
    );
    assert!(after.counter("parallel.scopes") > before.counter("parallel.scopes"));
}
