//! Minimal deterministic JSON: the one escaping/formatting implementation
//! shared by the metrics snapshot exporter ([`crate::snapshot`]) and the
//! `chameleond` wire protocol (`chameleon_server::protocol`).
//!
//! The workspace carries no serialization dependency, so this module is
//! the canonical hand-rolled implementation. Determinism contract:
//!
//! * object keys are emitted in the order the caller supplies them (the
//!   snapshot code iterates `BTreeMap`s, the protocol writes fixed field
//!   orders), never re-sorted here;
//! * numbers use Rust's shortest-round-trip `Display` for `f64` (the same
//!   bits always print the same bytes) and plain decimal for integers;
//! * strings escape the two mandatory JSON escapes (`"` and `\`), the
//!   named control-character short forms, and all other C0 controls as
//!   `\u00XX`. Non-ASCII text is passed through as UTF-8, not
//!   `\u`-escaped, so the output is byte-stable regardless of any locale
//!   or environment.
//!
//! A small recursive-descent parser for the same grammar lives here too:
//! the server's request decoder and the protocol tests use it, keeping
//! encode and decode in one place.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends the JSON escaping of `s` (without surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Formats an `f64` deterministically: shortest-round-trip `Display`,
/// with non-finite values (which JSON cannot represent) mapped to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        let mut s = v.to_string();
        // `Display` prints integral floats without a point ("3"); keep
        // them valid JSON numbers as-is (JSON has one number type).
        if s == "-0" {
            s = "0".to_string();
        }
        s
    } else {
        "null".to_string()
    }
}

/// A parsed JSON document. Objects preserve no duplicate keys (last one
/// wins) and iterate in sorted order via the underlying `BTreeMap`.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`; integers up to 2⁵³ are
    /// exact, which covers every field the protocol and metrics use).
    Num(f64),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    /// Returns a byte-offset-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field access (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value back to canonical JSON (object keys in sorted
    /// order, numbers via [`number`], strings via [`string`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => out.push_str(&number(*v)),
            Json::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(out, k);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs: only BMP escapes are produced by
                        // our encoder; accept pairs from other producers.
                        if (0xD800..0xDC00).contains(&cp) {
                            if bytes.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("unpaired surrogate".into());
                            }
                            let hex2 = bytes
                                .get(*pos + 3..*pos + 7)
                                .ok_or("truncated surrogate pair")?;
                            let hex2 = std::str::from_utf8(hex2).map_err(|_| "bad \\u escape")?;
                            let lo = u32::from_str_radix(hex2, 16).map_err(|_| "bad \\u escape")?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                        } else {
                            out.push(char::from_u32(cp).ok_or("invalid \\u code point")?);
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) => {
                if b < 0x20 {
                    return Err(format!("raw control character at byte {pos}", pos = *pos));
                }
                // Copy the whole run of plain bytes at once (graph payloads
                // are megabytes; per-char handling would be quadratic).
                let start = *pos;
                while *pos < bytes.len() {
                    let b = bytes[*pos];
                    if b == b'"' || b == b'\\' || b < 0x20 {
                        break;
                    }
                    *pos += 1;
                }
                let run = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(run);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_mandatory_characters() {
        assert_eq!(string(r#"a"b"#), r#""a\"b""#);
        assert_eq!(string(r"a\b"), r#""a\\b""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(string("line1\nline2"), "\"line1\\nline2\"");
        assert_eq!(string("tab\there"), "\"tab\\there\"");
        assert_eq!(string("cr\r"), "\"cr\\r\"");
        assert_eq!(string("\u{08}\u{0C}"), "\"\\b\\f\"");
        // Unnamed C0 controls use \u00XX.
        assert_eq!(string("\u{01}\u{1f}"), "\"\\u0001\\u001f\"");
        assert_eq!(string("\u{00}"), "\"\\u0000\"");
    }

    #[test]
    fn non_ascii_passes_through_as_utf8() {
        assert_eq!(string("héllo wörld"), "\"héllo wörld\"");
        assert_eq!(string("日本語"), "\"日本語\"");
        assert_eq!(string("🦎"), "\"🦎\"");
    }

    #[test]
    fn numbers_are_shortest_roundtrip() {
        assert_eq!(number(0.05), "0.05");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(-0.0), "0");
        assert_eq!(number(1e-9), "0.000000001");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn parse_roundtrips_escapes() {
        for s in [
            "plain",
            "with \"quotes\"",
            "tab\tnl\n",
            "ünïcode 日本語 🦎",
            "\u{01}",
        ] {
            let doc = string(s);
            let parsed = Json::parse(&doc).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "through {doc}");
        }
    }

    #[test]
    fn parse_object_and_access() {
        let doc = r#"{"op": "check", "k": 20, "nested": {"ok": true}, "xs": [1, 2.5]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("check"));
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(20));
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("ok"))
                .and_then(Json::as_bool),
            Some(true)
        );
        match v.get("xs") {
            Some(Json::Arr(xs)) => {
                assert_eq!(xs.len(), 2);
                assert_eq!(xs[1].as_f64(), Some(2.5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "truex",
            "1 2",
            "",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_surrogate_pair() {
        let v = Json::parse("\"\\ud83e\\udd8e\"").unwrap();
        assert_eq!(v.as_str(), Some("🦎"));
        assert!(Json::parse("\"\\ud83e\"").is_err());
    }

    #[test]
    fn render_is_canonical_and_stable() {
        let doc = r#"{"b": 1, "a": {"y": [true, null, "s\n"], "x": 0.5}}"#;
        let v = Json::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(rendered, r#"{"a":{"x":0.5,"y":[true,null,"s\n"]},"b":1}"#);
        // Fixed point: rendering the re-parse reproduces the bytes.
        assert_eq!(Json::parse(&rendered).unwrap().render(), rendered);
    }
}
