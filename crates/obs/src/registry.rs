//! The process-wide metrics registry.
//!
//! Sites ([`CounterSite`], [`SpanSite`], [`HistogramSite`]) are `static`s
//! minted by the recording macros at each call site; on first use a site
//! adds itself to the global registry, which is the only place holding the
//! full list. Recording therefore never takes a lock — the registry mutexes
//! are touched once per site (registration) and by snapshot/reset readers.

use crate::site::{CounterSite, HistogramSite, SpanSite};
use crate::snapshot::Snapshot;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Compile-time switch: a `no-obs` build (`--no-default-features`)
/// constant-folds every recording call away.
pub(crate) const COMPILED_IN: bool = cfg!(feature = "enabled");

/// The global metrics registry. Obtain it with [`Registry::global`].
pub struct Registry {
    counters: Mutex<Vec<&'static CounterSite>>,
    spans: Mutex<Vec<&'static SpanSite>>,
    histograms: Mutex<Vec<&'static HistogramSite>>,
    enabled: AtomicBool,
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

impl Registry {
    /// The process-wide registry. First access also installs the parallel
    /// scheduler observer (see [`crate::bridge`]), so any program that
    /// records one metric automatically observes `chameleon_stats`'s
    /// fan-outs too.
    pub fn global() -> &'static Registry {
        GLOBAL.get_or_init(|| {
            if COMPILED_IN {
                crate::bridge::install_scheduler_observer();
            }
            Registry {
                counters: Mutex::new(Vec::new()),
                spans: Mutex::new(Vec::new()),
                histograms: Mutex::new(Vec::new()),
                enabled: AtomicBool::new(true),
            }
        })
    }

    /// True when recording is live: compiled in AND not runtime-disabled.
    /// One relaxed load — cheap enough for every recording call.
    #[inline]
    pub fn recording(&self) -> bool {
        COMPILED_IN && self.enabled.load(Ordering::Relaxed)
    }

    /// Runtime kill-switch (recording starts enabled). Disabling stops new
    /// records but keeps accumulated values readable. Returns the previous
    /// state.
    pub fn set_enabled(&self, on: bool) -> bool {
        self.enabled.swap(on, Ordering::Relaxed)
    }

    fn poisoned<'a, T>(
        guard: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
    ) -> MutexGuard<'a, T> {
        // Registration lists hold only `&'static` pointers; a panic while
        // appending cannot leave them in a broken state.
        guard.unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn register_counter(&self, site: &'static CounterSite) {
        Self::poisoned(self.counters.lock()).push(site);
    }

    pub(crate) fn register_span(&self, site: &'static SpanSite) {
        Self::poisoned(self.spans.lock()).push(site);
    }

    pub(crate) fn register_histogram(&self, site: &'static HistogramSite) {
        Self::poisoned(self.histograms.lock()).push(site);
    }

    /// A point-in-time copy of every registered site, merged by name.
    /// Concurrent recorders may land between the individual atomic reads —
    /// the snapshot is consistent per field, not across fields.
    pub fn snapshot(&self) -> Snapshot {
        let counters: Vec<_> = Self::poisoned(self.counters.lock()).to_vec();
        let spans: Vec<_> = Self::poisoned(self.spans.lock()).to_vec();
        let histograms: Vec<_> = Self::poisoned(self.histograms.lock()).to_vec();
        Snapshot::collect(&counters, &spans, &histograms)
    }

    /// Zeroes every registered site (sites stay registered). Meant for
    /// tests and for long-running processes that publish deltas.
    pub fn reset(&self) {
        for c in Self::poisoned(self.counters.lock()).iter() {
            c.reset();
        }
        for s in Self::poisoned(self.spans.lock()).iter() {
            s.reset();
        }
        for h in Self::poisoned(self.histograms.lock()).iter() {
            h.reset();
        }
    }
}
