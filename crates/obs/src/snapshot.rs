//! Point-in-time metric snapshots and their JSON rendering.
//!
//! The JSON is hand-rolled (this workspace carries no serialization
//! dependency) and fully deterministic for fixed metric values: maps are
//! `BTreeMap`s, so keys are emitted in sorted order, and floating-point
//! fields are printed with fixed precision. String escaping is delegated
//! to [`crate::json`], the shared encoder also used by the `chameleond`
//! wire protocol.

use crate::site::{CounterSite, HistogramSite, SpanSite};
use chameleon_stats::Log2Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate statistics of one span name (all sites sharing the name are
/// merged).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Completed passes.
    pub count: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    /// Fastest pass in nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest pass in nanoseconds.
    pub max_ns: u64,
    /// Log₂ latency histogram of all passes.
    pub hist: Log2Histogram,
}

impl SpanStats {
    /// Mean nanoseconds per pass (0 when `count == 0`).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }

    /// Mean seconds per pass.
    pub fn mean_s(&self) -> f64 {
        self.mean_ns() / 1e9
    }

    /// Fastest pass in seconds.
    pub fn min_s(&self) -> f64 {
        self.min_ns as f64 / 1e9
    }
}

/// A point-in-time copy of every registered metric, merged by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Value histograms by name.
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl Snapshot {
    pub(crate) fn collect(
        counters: &[&'static CounterSite],
        spans: &[&'static SpanSite],
        histograms: &[&'static HistogramSite],
    ) -> Self {
        let mut out = Snapshot::default();
        for c in counters {
            *out.counters.entry(c.name().to_string()).or_insert(0) += c.value();
        }
        for s in spans {
            let (count, total_ns, min_ns, max_ns, hist) = s.load();
            let entry = out.spans.entry(s.name().to_string()).or_insert(SpanStats {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
                hist: Log2Histogram::new(),
            });
            entry.count += count;
            entry.total_ns += total_ns;
            entry.min_ns = entry.min_ns.min(min_ns);
            entry.max_ns = entry.max_ns.max(max_ns);
            let merged: Vec<u64> = entry
                .hist
                .counts()
                .iter()
                .zip(hist.counts())
                .map(|(a, b)| a + b)
                .collect();
            entry.hist = Log2Histogram::from_counts(&merged, entry.hist.sum() + hist.sum());
        }
        // An untouched span keeps min = MAX sentinel; normalize to 0.
        for s in out.spans.values_mut() {
            if s.count == 0 {
                s.min_ns = 0;
            }
        }
        for h in histograms {
            let hist = h.materialize();
            out.histograms
                .entry(h.name().to_string())
                .and_modify(|existing| {
                    let merged: Vec<u64> = existing
                        .counts()
                        .iter()
                        .zip(hist.counts())
                        .map(|(a, b)| a + b)
                        .collect();
                    *existing = Log2Histogram::from_counts(&merged, existing.sum() + hist.sum());
                })
                .or_insert(hist);
        }
        out
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Span aggregate by name.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Value histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Renders the snapshot as a deterministic JSON document.
    pub fn to_json(&self) -> String {
        let mut j = String::with_capacity(4096);
        j.push_str("{\n");
        let _ = writeln!(
            j,
            "  \"recording_compiled_in\": {},",
            crate::registry::COMPILED_IN
        );
        j.push_str("  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(j, "\n    {}: {v}{sep}", crate::json::string(name));
        }
        j.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        j.push_str("  \"spans\": {");
        for (i, (name, s)) in self.spans.iter().enumerate() {
            let sep = if i + 1 < self.spans.len() { "," } else { "" };
            let _ = write!(
                j,
                "\n    {name}: {{ \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                 \"max_ns\": {}, \"mean_ns\": {:.1}, \"p50_ns_ub\": {}, \"p99_ns_ub\": {}, \
                 \"buckets\": {} }}{sep}",
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns,
                s.mean_ns(),
                s.hist.quantile_upper_bound(0.5),
                s.hist.quantile_upper_bound(0.99),
                buckets_json(&s.hist),
                name = crate::json::string(name),
            );
        }
        j.push_str(if self.spans.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        j.push_str("  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let sep = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let _ = write!(
                j,
                "\n    {name}: {{ \"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                 \"p50_ub\": {}, \"buckets\": {} }}{sep}",
                h.total(),
                h.sum(),
                h.mean(),
                h.quantile_upper_bound(0.5),
                buckets_json(h),
                name = crate::json::string(name),
            );
        }
        j.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        j.push_str("}\n");
        j
    }
}

/// `[[lo, hi, count], ...]` for the non-empty buckets.
fn buckets_json(h: &Log2Histogram) -> String {
    let parts: Vec<String> = h
        .nonzero_buckets()
        .into_iter()
        .map(|(lo, hi, c)| format!("[{lo}, {hi}, {c}]"))
        .collect();
    format!("[{}]", parts.join(", "))
}
