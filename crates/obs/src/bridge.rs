//! Bridge into `chameleon_stats::parallel`'s scheduler telemetry hook.
//!
//! The stats crate sits below this one in the dependency graph, so it
//! cannot record into the registry itself; instead it exposes a
//! [`ParallelObserver`] hook and this module installs an implementation
//! that forwards per-chunk and per-scope telemetry into ordinary obs
//! counters and histograms:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `parallel.chunks_executed` | counter | chunks run across all fan-outs |
//! | `parallel.scopes` | counter | `map_chunks` calls observed |
//! | `parallel.chunk_busy_ns` | histogram | per-chunk wall time |
//! | `parallel.scope_wall_ns` | histogram | per-fan-out wall time |
//! | `parallel.utilization_pct` | histogram | per-fan-out `busy/(threads·wall)` |
//!
//! Installation happens automatically the first time any obs site records
//! (see [`Registry::global`](crate::Registry::global)).

use chameleon_stats::parallel::ParallelObserver;

struct SchedulerObserver;

impl ParallelObserver for SchedulerObserver {
    fn chunk_completed(&self, _worker: usize, _chunk: usize, busy_ns: u64) {
        crate::counter!("parallel.chunks_executed").add(1);
        crate::record_value!("parallel.chunk_busy_ns", busy_ns);
    }

    fn scope_completed(&self, threads: usize, _chunks: usize, busy_ns: u64, wall_ns: u64) {
        crate::counter!("parallel.scopes").add(1);
        crate::record_value!("parallel.scope_wall_ns", wall_ns);
        let denom = (threads as u64).saturating_mul(wall_ns).max(1);
        let pct = busy_ns.saturating_mul(100) / denom;
        crate::record_value!("parallel.utilization_pct", pct.min(100));
    }
}

static SCHEDULER_OBSERVER: SchedulerObserver = SchedulerObserver;

/// Installs the scheduler observer (idempotent; first caller wins).
/// Returns `true` when this call performed the installation.
pub fn install_scheduler_observer() -> bool {
    chameleon_stats::parallel::set_parallel_observer(&SCHEDULER_OBSERVER)
}
