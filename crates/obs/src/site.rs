//! Recording sites: the `static` atoms behind the `counter!`, `span!` and
//! `record_value!` macros.
//!
//! Every site is a `static` with interior mutability only through relaxed
//! atomics, so recording from any number of threads is free of locks and
//! free of ordering constraints — metrics are monotone accumulators whose
//! exact interleaving is irrelevant. A site lazily adds itself to the
//! [`Registry`](crate::Registry) the first time it records (a single
//! compare-exchange decides the one registering thread).

use crate::registry::Registry;
use chameleon_stats::histogram::LOG2_BUCKETS;
use chameleon_stats::Log2Histogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Relaxed-atomic mirror of a [`Log2Histogram`]'s buckets (the bucket
/// geometry — index math and bounds — is `chameleon_stats`'s; only the
/// storage is atomic here).
pub(crate) struct AtomicLog2 {
    buckets: [AtomicU64; LOG2_BUCKETS],
    sum: AtomicU64,
}

impl AtomicLog2 {
    pub(crate) const fn new() -> Self {
        // Pre-inline-const array init: a const item may be repeated.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; LOG2_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub(crate) fn record(&self, x: u64) {
        self.buckets[Log2Histogram::bucket_index(x)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(x, Ordering::Relaxed);
    }

    pub(crate) fn materialize(&self) -> Log2Histogram {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Log2Histogram::from_counts(&counts, self.sum.load(Ordering::Relaxed) as u128)
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Lazily registers `site` exactly once (winner of the compare-exchange).
macro_rules! ensure_registered {
    ($self:ident, $register:ident) => {
        if !$self.registered.load(Ordering::Relaxed)
            && $self
                .registered
                .compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            Registry::global().$register($self);
        }
    };
}

/// A named monotone counter. Create via the [`counter!`](crate::counter)
/// macro, which mints one `static` site per call site.
pub struct CounterSite {
    name: &'static str,
    registered: AtomicBool,
    value: AtomicU64,
}

impl CounterSite {
    /// A zeroed site (const, so it can be a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            value: AtomicU64::new(0),
        }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (no-op when recording is off).
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !Registry::global().recording() {
            return;
        }
        ensure_registered!(self, register_counter);
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named wall-time span aggregate: call count, total/min/max nanoseconds
/// and a log₂ latency histogram. Create via the [`span!`](crate::span)
/// macro and hold the returned guard for the duration of the region.
pub struct SpanSite {
    name: &'static str,
    registered: AtomicBool,
    count: AtomicU64,
    total_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    hist: AtomicLog2,
}

impl SpanSite {
    /// A zeroed site (const, so it can be a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            hist: AtomicLog2::new(),
        }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one completed pass of `elapsed_ns` nanoseconds.
    #[inline]
    pub fn record(&'static self, elapsed_ns: u64) {
        if !Registry::global().recording() {
            return;
        }
        ensure_registered!(self, register_span);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
        self.hist.record(elapsed_ns);
    }

    pub(crate) fn load(&self) -> (u64, u64, u64, u64, Log2Histogram) {
        (
            self.count.load(Ordering::Relaxed),
            self.total_ns.load(Ordering::Relaxed),
            self.min_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            self.hist.materialize(),
        )
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        self.hist.reset();
    }
}

/// RAII timer for a [`SpanSite`]: reads the clock on creation, records the
/// elapsed time into the site on drop. When recording is off the guard
/// holds no timestamp and drop is free.
#[must_use = "a span guard records on drop; binding it to _ discards the measurement immediately"]
pub struct SpanGuard {
    started: Option<(&'static SpanSite, Instant)>,
}

impl SpanGuard {
    /// Starts timing `site` (or an inert guard when recording is off).
    #[inline]
    pub fn enter(site: &'static SpanSite) -> Self {
        Self {
            started: Registry::global()
                .recording()
                .then(|| (site, Instant::now())),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((site, start)) = self.started.take() {
            site.record(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

/// A named log₂ value histogram for arbitrary non-negative magnitudes
/// (chunk sizes, utilization percentages, byte counts). Create via the
/// [`record_value!`](crate::record_value) macro.
pub struct HistogramSite {
    name: &'static str,
    registered: AtomicBool,
    hist: AtomicLog2,
}

impl HistogramSite {
    /// A zeroed site (const, so it can be a `static` initializer).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            registered: AtomicBool::new(false),
            hist: AtomicLog2::new(),
        }
    }

    /// The site's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one observation (no-op when recording is off).
    #[inline]
    pub fn record(&'static self, x: u64) {
        if !Registry::global().recording() {
            return;
        }
        ensure_registered!(self, register_histogram);
        self.hist.record(x);
    }

    pub(crate) fn materialize(&self) -> Log2Histogram {
        self.hist.materialize()
    }

    pub(crate) fn reset(&self) {
        self.hist.reset();
    }
}
