//! Zero-dependency observability for the Chameleon pipeline: hierarchical
//! timing spans, atomic counters and log₂ histograms, aggregated in a
//! process-wide registry and exportable as deterministic JSON.
//!
//! # Design
//!
//! * **Cheap.** Every recording call is a handful of relaxed atomic RMWs
//!   on a `static` site minted by the macro at the call site; no locks, no
//!   allocation, no syscalls. A runtime kill-switch ([`set_enabled`]) and
//!   a compile-time feature (`enabled`, on by default; build with
//!   `--no-default-features` for a `no-obs` binary) turn recording off.
//! * **Deterministic-by-construction.** Recording only reads clocks and
//!   bumps atomics — it never draws randomness, never reorders work and
//!   never feeds back into control flow, so instrumented pipelines remain
//!   bit-identical to uninstrumented ones at every thread count (enforced
//!   by `tests/metrics.rs` and `tests/reproducibility.rs` at the
//!   workspace root).
//! * **Hierarchical by naming convention.** Span and counter names are
//!   dot-separated paths, `component.operation[.detail]` — e.g.
//!   `genobf.trial`, `ensemble.sample`, `anonymity.degree_pmfs` — so
//!   consumers can aggregate by prefix without a nesting protocol.
//!
//! # Usage
//!
//! ```
//! // Time a region (guard records on drop):
//! {
//!     let _span = chameleon_obs::span!("doc.example.region");
//!     chameleon_obs::counter!("doc.example.items").add(3);
//!     chameleon_obs::record_value!("doc.example.bytes", 4096);
//! }
//! let snap = chameleon_obs::snapshot();
//! if chameleon_obs::is_enabled() {
//!     assert_eq!(snap.counter("doc.example.items"), 3);
//!     assert_eq!(snap.span("doc.example.region").unwrap().count, 1);
//! }
//! println!("{}", snap.to_json());
//! ```
//!
//! The scheduler of `chameleon_stats::parallel` is observed automatically
//! (per-chunk busy time → thread-utilization histograms) as soon as any
//! metric records; see [`bridge`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bridge;
pub mod json;
pub mod registry;
pub mod site;
pub mod snapshot;

pub use registry::Registry;
pub use site::{CounterSite, HistogramSite, SpanGuard, SpanSite};
pub use snapshot::{Snapshot, SpanStats};

/// Starts a timing span named by the string literal; returns a guard that
/// records the elapsed wall time into the global registry when dropped.
///
/// Each macro expansion mints one `static` recording site, so the hot path
/// costs two clock reads plus a few relaxed atomic updates. Sites sharing
/// a name (e.g. the same literal in two functions) are merged at snapshot
/// time.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __OBS_SPAN_SITE: $crate::site::SpanSite = $crate::site::SpanSite::new($name);
        $crate::site::SpanGuard::enter(&__OBS_SPAN_SITE)
    }};
}

/// A named monotone counter handle: `counter!("worlds.sampled").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __OBS_COUNTER_SITE: $crate::site::CounterSite =
            $crate::site::CounterSite::new($name);
        &__OBS_COUNTER_SITE
    }};
}

/// Records one observation into a named log₂ value histogram:
/// `record_value!("parallel.chunk_busy_ns", ns)`.
#[macro_export]
macro_rules! record_value {
    ($name:literal, $value:expr) => {{
        static __OBS_HIST_SITE: $crate::site::HistogramSite =
            $crate::site::HistogramSite::new($name);
        __OBS_HIST_SITE.record($value)
    }};
}

/// True when recording is live (compiled in and not runtime-disabled).
pub fn is_enabled() -> bool {
    Registry::global().recording()
}

/// Runtime kill-switch for all recording; returns the previous state.
/// Disabling never discards accumulated values and — by design — never
/// changes any pipeline output, only whether the registry sees it.
pub fn set_enabled(on: bool) -> bool {
    Registry::global().set_enabled(on)
}

/// Zeroes every registered metric (sites stay registered).
pub fn reset() {
    Registry::global().reset()
}

/// A point-in-time copy of all metrics, merged by name.
pub fn snapshot() -> Snapshot {
    Registry::global().snapshot()
}

/// The current metrics as a deterministic JSON document — the payload of
/// the CLI's `--metrics <path>` flag and of the bench bins' `"metrics"`
/// field.
pub fn metrics_json() -> String {
    snapshot().to_json()
}

/// Current value of one named counter (0 when the counter was never
/// recorded, or in a no-obs build). Convenience for tests and health
/// checks that assert on a single site — e.g. the server's fault and
/// poison-recovery counters — without walking a full [`Snapshot`].
pub fn counter_value(name: &str) -> u64 {
    snapshot().counter(name)
}
