//! ε-DP degree sequences with constrained inference (Hay, Rastogi, Miklau,
//! Suciu — VLDB 2009): noise the *sorted* degree sequence (edge-level L1
//! sensitivity 2: one edge moves two degrees by one each) and restore the
//! monotonicity constraint by isotonic regression (pool-adjacent-violators),
//! which provably shrinks the error from O(n/ε) to Õ(√n/ε) and — in
//! practice — eliminates the phantom-hub artifacts of naive histogram
//! noising.

use crate::laplace::sample_laplace;
use rand::Rng;

/// Isotonic regression under the L2 norm via pool-adjacent-violators:
/// returns the non-decreasing sequence closest to `values`.
pub fn isotonic_regression(values: &[f64]) -> Vec<f64> {
    // Blocks of (mean, count), merged while decreasing.
    let mut means: Vec<f64> = Vec::with_capacity(values.len());
    let mut counts: Vec<usize> = Vec::with_capacity(values.len());
    for &v in values {
        means.push(v);
        counts.push(1);
        while means.len() > 1 && means[means.len() - 2] > means[means.len() - 1] {
            let (m2, c2) = (
                means.pop().expect("nonempty"),
                counts.pop().expect("nonempty"),
            );
            let last = means.len() - 1;
            let c1 = counts[last];
            means[last] = (means[last] * c1 as f64 + m2 * c2 as f64) / (c1 + c2) as f64;
            counts[last] = c1 + c2;
        }
    }
    let mut out = Vec::with_capacity(values.len());
    for (m, c) in means.into_iter().zip(counts) {
        for _ in 0..c {
            out.push(m);
        }
    }
    out
}

/// ε-DP estimate of a graph's degree sequence: sorts, adds Laplace(2/ε)
/// per entry, applies isotonic regression, rounds, and clamps to
/// `[0, max_degree]`. The output is sorted ascending (ordering is not a
/// secret; the mapping to nodes is discarded by the synthetic generator).
///
/// # Panics
/// Panics if `epsilon` is not strictly positive and finite.
pub fn dp_degree_sequence<R: Rng + ?Sized>(
    degrees: &[usize],
    epsilon: f64,
    max_degree: usize,
    rng: &mut R,
) -> Vec<usize> {
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be positive, got {epsilon}"
    );
    let mut sorted: Vec<f64> = degrees.iter().map(|&d| d as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let scale = 2.0 / epsilon;
    for v in &mut sorted {
        *v += sample_laplace(scale, rng);
    }
    isotonic_regression(&sorted)
        .into_iter()
        .map(|v| (v.round().max(0.0) as usize).min(max_degree))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn isotonic_identity_on_sorted_input() {
        let v = vec![1.0, 2.0, 2.0, 5.0];
        assert_eq!(isotonic_regression(&v), v);
    }

    #[test]
    fn isotonic_pools_violations() {
        // [3, 1] → pooled mean [2, 2].
        assert_eq!(isotonic_regression(&[3.0, 1.0]), vec![2.0, 2.0]);
        // Known example: [1, 3, 2, 4] → [1, 2.5, 2.5, 4].
        assert_eq!(
            isotonic_regression(&[1.0, 3.0, 2.0, 4.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn isotonic_output_is_monotone_and_mean_preserving() {
        let v = vec![5.0, 4.0, 6.0, 1.0, 9.0, 2.0, 2.0, 8.0];
        let iso = isotonic_regression(&v);
        for w in iso.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let mean_in: f64 = v.iter().sum::<f64>() / v.len() as f64;
        let mean_out: f64 = iso.iter().sum::<f64>() / iso.len() as f64;
        assert!((mean_in - mean_out).abs() < 1e-9);
    }

    #[test]
    fn isotonic_empty_and_single() {
        assert!(isotonic_regression(&[]).is_empty());
        assert_eq!(isotonic_regression(&[7.0]), vec![7.0]);
    }

    #[test]
    fn dp_sequence_tracks_truth_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(0);
        let degrees: Vec<usize> = (0..500).map(|i| (i % 20) + 1).collect();
        let noisy = dp_degree_sequence(&degrees, 50.0, 100, &mut rng);
        let sum_true: usize = degrees.iter().sum();
        let sum_noisy: usize = noisy.iter().sum();
        let rel = (sum_true as f64 - sum_noisy as f64).abs() / sum_true as f64;
        assert!(rel < 0.05, "total degree off by {rel}");
        // Monotone output.
        for w in noisy.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn dp_sequence_no_phantom_hubs() {
        // The killer artifact of naive histogram noising: at low epsilon,
        // isotonic post-processing must not invent degrees far above the
        // true maximum.
        let mut rng = StdRng::seed_from_u64(1);
        let degrees: Vec<usize> = vec![2; 300];
        let noisy = dp_degree_sequence(&degrees, 0.5, 256, &mut rng);
        let max = *noisy.iter().max().unwrap();
        assert!(max < 20, "phantom hub of degree {max} appeared");
    }

    #[test]
    fn dp_sequence_low_epsilon_noisier() {
        let degrees: Vec<usize> = (0..400).map(|i| i % 10).collect();
        let l1 = |eps: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let noisy = dp_degree_sequence(&degrees, eps, 64, &mut rng);
            let mut truth: Vec<usize> = degrees.clone();
            truth.sort_unstable();
            truth
                .iter()
                .zip(&noisy)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum()
        };
        assert!(l1(0.1, 3) > l1(10.0, 3));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = dp_degree_sequence(&[1, 2], -1.0, 10, &mut rng);
    }
}
