//! Differentially-private synthetic publication of uncertain graphs — the
//! *other* privacy avenue the paper's Related Work surveys ("most research
//! in this direction projects an input graph to dK-series and ensures
//! differential privacy on dK-series statistics; these private statistics
//! are then fed into generators"), included so the reproduction can test
//! the paper's claim that "current techniques are still inadequate to
//! provide desirable data utility for many graph mining tasks".
//!
//! The publisher implements the standard dK-1 pipeline for uncertain
//! graphs under edge-level ε-differential privacy:
//!
//! 1. **Private degree sequence** — the sorted *structural* degree
//!    sequence of the support graph (the probability marginal is captured
//!    separately; expected degrees would double-count the probability
//!    shrinkage), Laplace(2/ε)-noised with isotonic-regression constrained
//!    inference (Hay et al., VLDB 2009) — the state-of-practice dK-1
//!    release, free of the phantom-hub artifacts of naive histogram
//!    noising.
//! 2. **Private probability histogram** — histogram of edge probabilities
//!    over \[0, 1\] bins, Laplace-noised (sensitivity 1 per count, plus the
//!    total edge count, sensitivity 1).
//! 3. **Regeneration** — a Chung–Lu graph with weights drawn from the
//!    noised degree histogram and probabilities drawn from the noised
//!    probability histogram.
//!
//! The published graph has NO node correspondence with the input (the
//! synthetic generator relabels everything), so per-pair reliability is
//! undefined; compare aggregates (degree distribution, expected connected
//! pairs, distances, clustering) — exactly the limitation the paper's
//! §II holds against this line of work.
//!
//! # Example
//!
//! ```
//! use chameleon_dp::DpPublisher;
//! use chameleon_datasets::brightkite_like;
//!
//! let graph = brightkite_like(300, 7);
//! let publisher = DpPublisher::new(1.0); // total epsilon
//! let release = publisher.publish(&graph, 42);
//! assert_eq!(release.num_nodes(), graph.num_nodes());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod degree_sequence;
pub mod histogram_dp;
pub mod laplace;

pub use degree_sequence::{dp_degree_sequence, isotonic_regression};
pub use histogram_dp::{dp_integer_histogram, HistogramError};
pub use laplace::sample_laplace;

use chameleon_stats::SeedSequence;
use chameleon_ugraph::{generators, UncertainGraph};
use rand::Rng;

/// ε-DP synthetic-graph publisher (dK-1 style; see crate docs).
#[derive(Debug, Clone, Copy)]
pub struct DpPublisher {
    /// Total privacy budget, split evenly between the degree histogram and
    /// the probability histogram.
    pub epsilon: f64,
    /// Number of probability bins over \[0, 1\].
    pub prob_bins: usize,
    /// Number of expected-degree bins (degree values above are clamped).
    pub max_degree_bin: usize,
}

impl DpPublisher {
    /// Publisher with the given total ε and default binning.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        Self {
            epsilon,
            prob_bins: 10,
            max_degree_bin: 256,
        }
    }

    /// Publishes an ε-DP synthetic stand-in for `graph`.
    pub fn publish(&self, graph: &UncertainGraph, seed: u64) -> UncertainGraph {
        let seq = SeedSequence::new(seed);
        let eps_half = self.epsilon / 2.0;

        // ---- 1. Private degree sequence with constrained inference.
        let degrees: Vec<usize> = (0..graph.num_nodes() as u32)
            .map(|v| graph.degree(v))
            .collect();
        let mut rng = seq.rng("dp-degree");
        let noisy_sequence = dp_degree_sequence(&degrees, eps_half, self.max_degree_bin, &mut rng);

        // ---- 2. Private probability histogram (sensitivity 1) + count.
        let mut prob_hist = vec![0u64; self.prob_bins];
        for e in graph.edges() {
            let bin = ((e.p * self.prob_bins as f64) as usize).min(self.prob_bins - 1);
            prob_hist[bin] += 1;
        }
        let mut rng = seq.rng("dp-prob");
        let noisy_probs = dp_integer_histogram(&prob_hist, 1.0 / eps_half, &mut rng);

        // ---- 3. Regenerate. The noisy degree sequence has exactly one
        // entry per node (node count is public), so it is the Chung-Lu
        // weight sequence directly.
        let weights: Vec<f64> = noisy_sequence.iter().map(|&d| d as f64).collect();
        let mut rng = seq.rng("dp-topology");
        let mut synthetic = generators::chung_lu(&weights, &mut rng);

        // Probabilities from the noisy histogram (uniform within a bin).
        let total: u64 = noisy_probs.iter().sum();
        let mut rng = seq.rng("dp-probs-assign");
        for e in 0..synthetic.num_edges() as u32 {
            let p = if total == 0 {
                rng.gen::<f64>().clamp(1e-9, 1.0)
            } else {
                let mut x = rng.gen_range(0..total);
                let mut bin = 0usize;
                for (i, &c) in noisy_probs.iter().enumerate() {
                    if x < c {
                        bin = i;
                        break;
                    }
                    x -= c;
                }
                let lo = bin as f64 / self.prob_bins as f64;
                let hi = (bin + 1) as f64 / self.prob_bins as f64;
                (lo + (hi - lo) * rng.gen::<f64>()).clamp(1e-9, 1.0)
            };
            synthetic.set_prob(e, p).expect("valid probability");
        }
        synthetic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chameleon_datasets::brightkite_like;

    #[test]
    fn publish_preserves_node_count_and_validity() {
        let g = brightkite_like(200, 1);
        let release = DpPublisher::new(2.0).publish(&g, 7);
        assert_eq!(release.num_nodes(), 200);
        assert!(release.num_edges() > 0);
        assert!(release.edges().iter().all(|e| e.p > 0.0 && e.p <= 1.0));
    }

    #[test]
    fn high_epsilon_tracks_aggregates() {
        let g = brightkite_like(400, 2);
        let release = DpPublisher::new(100.0).publish(&g, 3);
        let d0 = g.expected_average_degree();
        let d1 = release.expected_average_degree();
        assert!(
            (d1 - d0).abs() / d0 < 0.35,
            "avg degree {d0} vs {d1} at eps=100"
        );
        let p0 = g.mean_edge_prob();
        let p1 = release.mean_edge_prob();
        assert!((p1 - p0).abs() < 0.1, "mean prob {p0} vs {p1}");
    }

    #[test]
    fn low_epsilon_distorts_more_than_high() {
        let g = brightkite_like(300, 4);
        let err = |eps: f64| {
            let mut worst = 0.0f64;
            // Average over a few seeds to damp generator luck.
            for seed in 0..3 {
                let release = DpPublisher::new(eps).publish(&g, seed);
                let e = (release.expected_average_degree() - g.expected_average_degree()).abs();
                worst += e;
            }
            worst / 3.0
        };
        let low = err(0.05);
        let high = err(50.0);
        assert!(
            low > high,
            "eps=0.05 error {low} should exceed eps=50 error {high}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = brightkite_like(150, 5);
        let a = DpPublisher::new(1.0).publish(&g, 11);
        let b = DpPublisher::new(1.0).publish(&g, 11);
        assert_eq!(a.num_edges(), b.num_edges());
        for (x, y) in a.edges().iter().zip(b.edges()) {
            assert_eq!((x.u, x.v), (y.u, y.v));
            assert!((x.p - y.p).abs() < 1e-15);
        }
    }

    #[test]
    fn no_node_correspondence_is_documented_behaviour() {
        // The synthetic graph generally shares no edges with the original —
        // it is a fresh draw from private statistics.
        let g = brightkite_like(200, 6);
        let release = DpPublisher::new(1.0).publish(&g, 8);
        let shared = release
            .edges()
            .iter()
            .filter(|e| g.has_edge(e.u, e.v))
            .count();
        // Some coincidental overlap is expected, but not identity.
        assert!(shared < release.num_edges());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_epsilon() {
        let _ = DpPublisher::new(0.0);
    }
}
