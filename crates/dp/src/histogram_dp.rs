//! Differentially-private integer histograms: Laplace noise + consistency
//! post-processing (clamp to non-negative integers).

use crate::laplace::sample_laplace;
use rand::Rng;

/// Error type reserved for future fallible histogram operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// The histogram was empty.
    Empty,
}

impl std::fmt::Display for HistogramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistogramError::Empty => write!(f, "empty histogram"),
        }
    }
}

impl std::error::Error for HistogramError {}

/// Adds Laplace(`scale`) noise to every bin and post-processes back to
/// non-negative integers (rounding, clamping at zero). Post-processing is
/// privacy-free; the privacy guarantee comes from `scale` =
/// sensitivity / ε chosen by the caller.
pub fn dp_integer_histogram<R: Rng + ?Sized>(counts: &[u64], scale: f64, rng: &mut R) -> Vec<u64> {
    counts
        .iter()
        .map(|&c| {
            let noisy = c as f64 + sample_laplace(scale, rng);
            noisy.round().max(0.0) as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_is_centered() {
        let mut rng = StdRng::seed_from_u64(0);
        let counts = vec![100u64; 200];
        let noisy = dp_integer_histogram(&counts, 2.0, &mut rng);
        let mean: f64 = noisy.iter().map(|&x| x as f64).sum::<f64>() / 200.0;
        assert!((mean - 100.0).abs() < 1.5, "mean={mean}");
    }

    #[test]
    fn output_is_nonnegative_even_for_zero_bins() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = vec![0u64; 500];
        let noisy = dp_integer_histogram(&counts, 10.0, &mut rng);
        // All outputs clamp at zero; some will be positive from noise.
        assert!(noisy.iter().any(|&x| x > 0));
        // (u64 is trivially non-negative; the point is rounding didn't wrap.)
        assert!(noisy.iter().all(|&x| x < 1000));
    }

    #[test]
    fn tighter_scale_less_distortion() {
        let counts: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let l1 = |scale: f64, seed: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let noisy = dp_integer_histogram(&counts, scale, &mut rng);
            counts
                .iter()
                .zip(&noisy)
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum()
        };
        assert!(l1(0.5, 2) < l1(20.0, 2));
    }

    #[test]
    fn deterministic_per_rng() {
        let counts = vec![5u64, 10, 0, 3];
        let a = dp_integer_histogram(&counts, 1.0, &mut StdRng::seed_from_u64(9));
        let b = dp_integer_histogram(&counts, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn error_display() {
        assert_eq!(HistogramError::Empty.to_string(), "empty histogram");
    }
}
