//! Laplace mechanism primitives.

use rand::Rng;

/// Samples Laplace(0, scale) by inverse transform.
///
/// # Panics
/// Panics if `scale` is not strictly positive and finite.
pub fn sample_laplace<R: Rng + ?Sized>(scale: f64, rng: &mut R) -> f64 {
    assert!(
        scale.is_finite() && scale > 0.0,
        "laplace scale must be positive, got {scale}"
    );
    // u uniform on (-1/2, 1/2]; X = -b·sgn(u)·ln(1 - 2|u|).
    let u: f64 = rng.gen::<f64>() - 0.5;
    let sign = if u >= 0.0 { 1.0 } else { -1.0 };
    let magnitude = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    -scale * sign * magnitude.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_laplace() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = 2.0;
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(b, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        // Var = 2b² = 8.
        assert!((var - 8.0).abs() < 0.4, "var={var}");
    }

    #[test]
    fn symmetric_tail_mass() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 40_000;
        let pos = (0..n)
            .filter(|_| sample_laplace(1.0, &mut rng) > 0.0)
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac positive = {frac}");
    }

    #[test]
    fn smaller_scale_concentrates() {
        let mut rng = StdRng::seed_from_u64(2);
        let spread = |b: f64, rng: &mut StdRng| -> f64 {
            (0..5000).map(|_| sample_laplace(b, rng).abs()).sum::<f64>() / 5000.0
        };
        let tight = spread(0.1, &mut rng);
        let wide = spread(5.0, &mut rng);
        assert!(tight < wide / 10.0, "tight={tight}, wide={wide}");
    }

    #[test]
    #[should_panic]
    fn rejects_bad_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sample_laplace(f64::NAN, &mut rng);
    }
}
