//! `chameleon` — anonymize, audit and analyze uncertain graphs from the
//! command line.
//!
//! ```text
//! chameleon generate  <out.txt> --dataset dblp|brightkite|ppi --nodes N [--seed S]
//! chameleon stats     <graph.txt>
//! chameleon check     <graph.txt> --k K [--epsilon E] [--original orig.txt]
//!                     [--tolerance T]   # adversary knows degree only up to ±T
//! chameleon anonymize <in.txt> <out.txt> --k K [--epsilon E] [--method RSME|RS|ME|REPAN]
//!                     [--seed S] [--worlds N] [--trials T] [--threads T]
//!                     # --threads 0 (default) uses all cores; results are
//!                     # bit-identical for every thread count
//! chameleon attack    <graph.txt> [--original orig.txt] [--candidates C]
//! chameleon profile   <graph.txt> [--original orig.txt] [--top T]
//! chameleon compare   <a.txt> <b.txt> [--worlds N] [--pairs P] [--seed S]
//! chameleon mine      <graph.txt> --task knn|clusters|influence
//!                     [--source V] [--top K] [--threshold T] [--seeds K]
//!                     [--worlds N] [--seed S]
//! chameleon synth     <in.txt> <out.txt> [--nodes N] [--seed S] [--dp-epsilon E]
//! ```
//!
//! Graphs use the text edge-list format of `chameleon_ugraph::io`. When
//! `--original` is omitted for check/attack/profile, the graph audits
//! itself (adversary knowledge = its own expected degrees).
//!
//! Every subcommand also accepts `--metrics <path>`: on exit (success,
//! failure, or a `check` violation) the process writes the observability
//! snapshot — timing spans, counters and latency histograms from
//! `chameleon_obs` — to the path as deterministic JSON.

mod args;

use args::Cli;
use chameleon_baseline::RepAn;
use chameleon_core::{
    anonymity_check, anonymity_check_tolerant, simulate_degree_attack, AdversaryKnowledge,
    Chameleon, ChameleonConfig, Method, PrivacyProfile,
};
use chameleon_reliability::{avg_reliability_discrepancy, sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::analysis::GraphSummary;
use chameleon_ugraph::builder::DedupPolicy;
use chameleon_ugraph::{io, UncertainGraph};

fn main() {
    let cli = Cli::from_env();
    let outcome = match cli.command() {
        Some("generate") => cmd_generate(&cli),
        Some("stats") => cmd_stats(&cli),
        Some("check") => cmd_check(&cli),
        Some("anonymize") => cmd_anonymize(&cli),
        Some("attack") => cmd_attack(&cli),
        Some("profile") => cmd_profile(&cli),
        Some("compare") => cmd_compare(&cli),
        Some("mine") => cmd_mine(&cli),
        Some("synth") => cmd_synth(&cli),
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
        None => Err(USAGE.to_string()),
    };
    // `--metrics` applies to every subcommand, including failed ones (a
    // run that errors out mid-pipeline still leaves a usable snapshot).
    let metrics = write_metrics(&cli);
    if let Err(msg) = outcome.and(metrics) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

/// Writes the observability snapshot to the path given by `--metrics`
/// (no-op when the flag is absent). Must be invoked on every exit path —
/// `cmd_check` calls it directly because its violation branch bypasses
/// `main`'s epilogue via `process::exit(2)`.
fn write_metrics(cli: &Cli) -> Result<(), String> {
    let path: String = cli.get("metrics", String::new())?;
    if path.is_empty() {
        return Ok(());
    }
    std::fs::write(&path, chameleon_obs::metrics_json())
        .map_err(|e| format!("{path}: cannot write metrics: {e}"))
}

const USAGE: &str =
    "usage: chameleon <generate|stats|check|anonymize|attack|profile|compare|mine|synth> ...
run with a command and --help-style flags documented in the crate docs";

fn operand(cli: &Cli, index: usize, what: &str) -> Result<String, String> {
    cli.positional()
        .get(index)
        .cloned()
        .ok_or_else(|| format!("missing {what} operand"))
}

fn load(path: &str) -> Result<UncertainGraph, String> {
    io::read_file(path, DedupPolicy::KeepFirst).map_err(|e| format!("{path}: {e}"))
}

fn knowledge_for(cli: &Cli, graph: &UncertainGraph) -> Result<AdversaryKnowledge, String> {
    match cli.get::<String>("original", String::new())? {
        s if s.is_empty() => Ok(AdversaryKnowledge::expected_degrees(graph)),
        path => {
            let original = load(&path)?;
            if original.num_nodes() != graph.num_nodes() {
                return Err(format!(
                    "original has {} nodes, graph has {}",
                    original.num_nodes(),
                    graph.num_nodes()
                ));
            }
            Ok(AdversaryKnowledge::expected_degrees(&original))
        }
    }
}

fn cmd_generate(cli: &Cli) -> Result<(), String> {
    let out = operand(cli, 0, "output path")?;
    let dataset: String = cli.get("dataset", "brightkite".to_string())?;
    let nodes: usize = cli.get("nodes", 500usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let graph = match dataset.to_lowercase().as_str() {
        "dblp" => chameleon_datasets::dblp_like(nodes, seed),
        "brightkite" => chameleon_datasets::brightkite_like(nodes, seed),
        "ppi" => chameleon_datasets::ppi_like(nodes, seed),
        other => return Err(format!("unknown dataset {other:?} (dblp|brightkite|ppi)")),
    };
    io::write_file(&graph, &out).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, GraphSummary::of(&graph));
    Ok(())
}

fn cmd_stats(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    println!("{}", GraphSummary::of(&graph));
    Ok(())
}

fn cmd_check(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let k: usize = cli.require("k")?;
    let epsilon: f64 = cli.get("epsilon", 0.0f64)?;
    let tolerance: u32 = cli.get("tolerance", 0u32)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let report = if tolerance == 0 {
        anonymity_check(&graph, &knowledge, k)
    } else {
        anonymity_check_tolerant(&graph, &knowledge, k, tolerance)
    };
    println!(
        "({k}, {epsilon})-obfuscation: {}",
        if report.satisfies(epsilon) {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "unobfuscated: {} of {} vertices (eps-hat = {:.5})",
        report.unobfuscated.len(),
        graph.num_nodes(),
        report.eps_hat
    );
    if !report.unobfuscated.is_empty() {
        let shown: Vec<String> = report
            .unobfuscated
            .iter()
            .take(10)
            .map(|v| v.to_string())
            .collect();
        println!("first exposed vertices: {}", shown.join(", "));
    }
    if report.satisfies(epsilon) {
        Ok(())
    } else {
        if let Err(msg) = write_metrics(cli) {
            eprintln!("error: {msg}");
        }
        std::process::exit(2);
    }
}

fn cmd_anonymize(cli: &Cli) -> Result<(), String> {
    let input = operand(cli, 0, "input path")?;
    let output = operand(cli, 1, "output path")?;
    let graph = load(&input)?;
    let k: usize = cli.require("k")?;
    let epsilon: f64 = cli.get("epsilon", 0.01f64)?;
    let method: String = cli.get("method", "RSME".to_string())?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let worlds: usize = cli.get("worlds", 500usize)?;
    let trials: usize = cli.get("trials", 5usize)?;
    let threads: usize = cli.get("threads", 0usize)?;
    let config = ChameleonConfig::builder()
        .k(k)
        .epsilon(epsilon)
        .num_world_samples(worlds)
        .trials(trials)
        .num_threads(threads)
        .build();
    let (published, sigma, eps_hat) = if method.eq_ignore_ascii_case("repan") {
        let r = RepAn::new(config)
            .anonymize(&graph, seed)
            .map_err(|e| e.to_string())?;
        (r.graph, r.sigma, r.eps_hat)
    } else {
        let m: Method = method.parse()?;
        let r = Chameleon::new(config)
            .anonymize(&graph, m, seed)
            .map_err(|e| e.to_string())?;
        (r.graph, r.sigma, r.eps_hat)
    };
    io::write_file(&published, &output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} — ({k}, {epsilon})-obfuscated with {method}, sigma = {sigma:.4e}, \
         eps-hat = {eps_hat:.5}, edges {} -> {}",
        output,
        graph.num_edges(),
        published.num_edges()
    );
    Ok(())
}

fn cmd_attack(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let candidates: usize = cli.get("candidates", 1usize)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let report = simulate_degree_attack(&graph, &knowledge, candidates);
    println!(
        "degree-informed Bayesian adversary vs {} vertices:",
        graph.num_nodes()
    );
    println!(
        "  top-1 re-identification rate: {:.4}",
        report.top1_success_rate
    );
    println!(
        "  top-{} candidate-set hit rate:  {:.4}",
        candidates, report.topc_success_rate
    );
    println!(
        "  mean posterior on true id:    {:.4}",
        report.mean_posterior()
    );
    let disclosed = report.disclosed(0.5);
    println!(
        "  practically disclosed (>50% confidence): {} vertices",
        disclosed.len()
    );
    Ok(())
}

fn cmd_profile(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let top: usize = cli.get("top", 10usize)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let profile = PrivacyProfile::compute(&graph, &knowledge);
    for eps in [0.0, 0.01, 0.05] {
        println!("max k at tolerance {eps}: {}", profile.max_k_at(eps));
    }
    println!("least-protected vertices:");
    for (v, h) in profile.weakest(top) {
        println!(
            "  vertex {v:>6}: H = {h:.3} bits (effective anonymity {:.1})",
            h.exp2()
        );
    }
    Ok(())
}

fn cmd_mine(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let task: String = cli.get("task", "knn".to_string())?;
    let worlds: usize = cli.get("worlds", 500usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let mut rng = SeedSequence::new(seed).rng("cli-mine");
    let ens = WorldEnsemble::sample(&graph, worlds, &mut rng);
    match task.as_str() {
        "knn" => {
            let source: u32 = cli.get("source", 0u32)?;
            let top: usize = cli.get("top", 10usize)?;
            if source as usize >= graph.num_nodes() {
                return Err(format!("source {source} out of range"));
            }
            println!("top-{top} most reliable nodes from {source}:");
            for nb in chameleon_mining::reliability_knn(&ens, source, top) {
                println!("  node {:>6}  reliability {:.4}", nb.node, nb.reliability);
            }
        }
        "clusters" => {
            let threshold: f64 = cli.get("threshold", 0.5f64)?;
            let min_size: usize = cli.get("min-size", 3usize)?;
            let cs = chameleon_mining::reliable_clusters(&graph, &ens, threshold, min_size);
            println!(
                "{} reliable clusters at threshold {threshold} (min size {min_size}):",
                cs.len()
            );
            for (i, c) in cs.clusters.iter().enumerate().take(20) {
                let preview: Vec<String> = c.iter().take(8).map(|v| v.to_string()).collect();
                let ellipsis = if c.len() > 8 { ", ..." } else { "" };
                println!(
                    "  #{i}: {} nodes [{}{}]",
                    c.len(),
                    preview.join(", "),
                    ellipsis
                );
            }
        }
        "influence" => {
            let k: usize = cli.get("seeds", 5usize)?;
            if k > graph.num_nodes() {
                return Err(format!("--seeds {k} exceeds node count"));
            }
            println!("greedy influence maximization ({k} seeds):");
            for (i, (v, spread)) in chameleon_mining::greedy_seed_selection(&ens, k)
                .into_iter()
                .enumerate()
            {
                println!(
                    "  pick {:>2}: node {v:>6}  cumulative spread {spread:.2}",
                    i + 1
                );
            }
        }
        other => return Err(format!("unknown task {other:?} (knn|clusters|influence)")),
    }
    Ok(())
}

/// Produce a synthetic twin of a graph: matched marginals (default) or an
/// epsilon-differentially-private dK-1 release (`--dp-epsilon`).
fn cmd_synth(cli: &Cli) -> Result<(), String> {
    let input = operand(cli, 0, "input path")?;
    let output = operand(cli, 1, "output path")?;
    let graph = load(&input)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let nodes: usize = cli.get("nodes", graph.num_nodes())?;
    let dp_epsilon: f64 = cli.get("dp-epsilon", 0.0f64)?;
    let twin = if dp_epsilon > 0.0 {
        if nodes != graph.num_nodes() {
            return Err(
                "--nodes cannot be combined with --dp-epsilon (node count is public)".into(),
            );
        }
        chameleon_dp::DpPublisher::new(dp_epsilon).publish(&graph, seed)
    } else {
        chameleon_datasets::synth_like(&graph, nodes, seed)
    };
    io::write_file(&twin, &output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({}{})",
        output,
        GraphSummary::of(&twin),
        if dp_epsilon > 0.0 {
            format!(", {dp_epsilon}-DP")
        } else {
            String::new()
        }
    );
    Ok(())
}

fn cmd_compare(cli: &Cli) -> Result<(), String> {
    let a_path = operand(cli, 0, "first graph path")?;
    let b_path = operand(cli, 1, "second graph path")?;
    let a = load(&a_path)?;
    let b = load(&b_path)?;
    if a.num_nodes() != b.num_nodes() {
        return Err("graphs must share a node set".into());
    }
    let worlds: usize = cli.get("worlds", 500usize)?;
    let pairs: usize = cli.get("pairs", 2000usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let seq = SeedSequence::new(seed);
    let pair_set = sample_distinct_pairs(a.num_nodes(), pairs, &mut seq.rng("pairs"));
    let ens_a = WorldEnsemble::sample(&a, worlds, &mut seq.rng("a"));
    let ens_b = WorldEnsemble::sample(&b, worlds, &mut seq.rng("b"));
    let rep = avg_reliability_discrepancy(&ens_a, &ens_b, &pair_set);
    println!(
        "avg reliability discrepancy: {:.5} (± {:.5} s.e., max {:.4})",
        rep.avg, rep.std_error, rep.max
    );
    println!(
        "expected average degree: {:.4} vs {:.4}",
        a.expected_average_degree(),
        b.expected_average_degree()
    );
    println!(
        "mean edge probability:   {:.4} vs {:.4}",
        a.mean_edge_prob(),
        b.mean_edge_prob()
    );
    Ok(())
}
