//! `chameleon` — anonymize, audit and analyze uncertain graphs from the
//! command line.
//!
//! ```text
//! chameleon generate  <out.txt> --dataset dblp|brightkite|ppi --nodes N [--seed S]
//! chameleon stats     <graph.txt>
//! chameleon check     <graph.txt> --k K [--epsilon E] [--original orig.txt]
//!                     [--tolerance T]   # adversary knows degree only up to ±T
//! chameleon anonymize <in.txt> <out.txt> --k K [--epsilon E] [--method RSME|RS|ME|REPAN]
//!                     [--seed S] [--worlds N] [--trials T] [--threads T]
//!                     [--strip-worlds W] [--max-ensemble-bytes B]
//!                     # --threads 0 (default) uses all cores; results are
//!                     # bit-identical for every thread count.
//!                     # --strip-worlds W analyzes the Monte-Carlo ensemble
//!                     # out of core, W worlds at a time (rounded up to 64),
//!                     # with bit-identical output; --max-ensemble-bytes B
//!                     # makes B a hard ceiling on tracked ensemble memory —
//!                     # runs that would exceed it fail cleanly instead.
//! chameleon attack    <graph.txt> [--original orig.txt] [--candidates C]
//! chameleon profile   <graph.txt> [--original orig.txt] [--top T]
//! chameleon compare   <a.txt> <b.txt> [--worlds N] [--pairs P] [--seed S]
//! chameleon mine      <graph.txt> --task knn|clusters|influence
//!                     [--source V] [--top K] [--threshold T] [--seeds K]
//!                     [--worlds N] [--seed S]
//! chameleon synth     <in.txt> <out.txt> [--nodes N] [--seed S] [--dp-epsilon E]
//! chameleon serve     [--host H] [--port P] [--workers N] [--queue-depth N]
//!                     [--cache N] [--timeout-ms MS] [--max-request-bytes N]
//!                     [--read-timeout-ms MS] [--max-connections N]
//!                     [--journal-dir DIR] [--journal-sync always|interval]
//!                     [--journal-segment-bytes N] [--resume]
//!                     # run the chameleond job service (see DESIGN.md §7–8);
//!                     # --journal-dir enables the durable-jobs write-ahead
//!                     # journal (DESIGN.md §11); --resume re-enqueues
//!                     # incomplete journaled jobs after a crash.
//!                     # with --metrics, the final snapshot is written on
//!                     # graceful shutdown. Built with the `fault-injection`
//!                     # feature, --fault-seed/--fault-panic-rate/
//!                     # --fault-panic-budget/--fault-cancel-rate/
//!                     # --fault-cancel-budget arm a deterministic chaos
//!                     # schedule (dev/test only).
//! chameleon gate      --backends addr,addr,... [--host H] [--port P]
//!                     [--forwarders N] [--queue-depth N] [--replicas N]
//!                     [--health-interval-ms MS] [--io-retries N]
//!                     [--retry-base-ms MS] [--retry-seed S]
//!                     [--max-request-bytes N] [--max-connections N]
//!                     [--max-batch N]
//!                     # run chameleon-gate (DESIGN.md §13): shard jobs
//!                     # across N chameleond backends by graph digest on a
//!                     # consistent-hash ring; dead backends are detected,
//!                     # their jobs re-driven to the ring successor, and
//!                     # results stay byte-identical regardless of placement.
//! chameleon submit    [in.txt] [out.txt] --job obfuscate|check|reliability|status|shutdown
//!                     [--host H] [--port P] [--id ID] [--timeout-ms MS]
//!                     [--retries N] [--retry-base-ms MS] [--io-retries N]
//!                     [--via-gateway]
//!                     [job flags as for the matching subcommand]
//!                     # send one job to a running chameleond; for
//!                     # obfuscate, the returned graph is written to out.txt
//!                     # byte-identical to `chameleon anonymize` output.
//!                     # Retryable rejections (queue full, injected faults)
//!                     # are retried with seeded-jitter backoff honoring the
//!                     # server's retry_after_ms hint; connect/I-O errors
//!                     # retry under the same backoff up to --io-retries.
//!                     # --via-gateway targets a chameleon-gate (port 7789)
//!                     # and widens both retry budgets to outlast failovers.
//! ```
//!
//! Graphs use the text edge-list format of `chameleon_ugraph::io`. When
//! `--original` is omitted for check/attack/profile, the graph audits
//! itself (adversary knowledge = its own expected degrees).
//!
//! Every subcommand also accepts `--metrics <path>`: on exit (success,
//! failure, or a `check` violation) the process writes the observability
//! snapshot — timing spans, counters and latency histograms from
//! `chameleon_obs` — to the path as deterministic JSON.

mod args;

use args::Cli;
use chameleon_baseline::RepAn;
use chameleon_core::{
    anonymity_check, anonymity_check_tolerant, simulate_degree_attack, AdversaryKnowledge,
    Chameleon, ChameleonConfig, Method, PrivacyProfile,
};
use chameleon_reliability::{avg_reliability_discrepancy, sample_distinct_pairs, WorldEnsemble};
use chameleon_stats::SeedSequence;
use chameleon_ugraph::analysis::GraphSummary;
use chameleon_ugraph::builder::DedupPolicy;
use chameleon_ugraph::{io, UncertainGraph};

/// Subcommand entry: name, flag whitelist, handler.
type Command = (
    &'static str,
    &'static [&'static str],
    fn(&Cli) -> Result<(), String>,
);

/// Per-subcommand flag whitelist (the global `--metrics` is implied);
/// `Cli::expect_flags` turns typos into errors instead of silent defaults.
const COMMANDS: &[Command] = &[
    ("generate", &["dataset", "nodes", "seed"], cmd_generate),
    ("stats", &[], cmd_stats),
    (
        "check",
        &["k", "epsilon", "tolerance", "original"],
        cmd_check,
    ),
    (
        "anonymize",
        &[
            "k",
            "epsilon",
            "method",
            "seed",
            "worlds",
            "trials",
            "threads",
            "incremental",
            "strip-worlds",
            "max-ensemble-bytes",
        ],
        cmd_anonymize,
    ),
    ("attack", &["original", "candidates"], cmd_attack),
    ("profile", &["original", "top"], cmd_profile),
    ("compare", &["worlds", "pairs", "seed"], cmd_compare),
    (
        "mine",
        &[
            "task",
            "source",
            "top",
            "threshold",
            "min-size",
            "seeds",
            "worlds",
            "seed",
        ],
        cmd_mine,
    ),
    ("synth", &["nodes", "seed", "dp-epsilon"], cmd_synth),
    ("serve", SERVE_FLAGS, cmd_serve),
    ("gate", GATE_FLAGS, cmd_gate),
    (
        "submit",
        &[
            "host",
            "port",
            "job",
            "id",
            "timeout-ms",
            "retries",
            "retry-base-ms",
            "io-retries",
            "via-gateway",
            "k",
            "epsilon",
            "method",
            "seed",
            "worlds",
            "trials",
            "threads",
            "strip-worlds",
            "tolerance",
            "pairs",
            "chunk-bytes",
        ],
        cmd_submit,
    ),
];

/// `gate` flag whitelist (the gateway tier of DESIGN.md §13).
const GATE_FLAGS: &[&str] = &[
    "host",
    "port",
    "backends",
    "forwarders",
    "queue-depth",
    "replicas",
    "health-interval-ms",
    "io-retries",
    "retry-base-ms",
    "retry-seed",
    "max-request-bytes",
    "max-connections",
    "max-batch",
];

/// `serve` flag whitelist; the `--fault-*` chaos flags exist only in
/// `fault-injection` builds so a production binary cannot arm them.
#[cfg(not(feature = "fault-injection"))]
const SERVE_FLAGS: &[&str] = &[
    "host",
    "port",
    "workers",
    "queue-depth",
    "cache",
    "timeout-ms",
    "max-request-bytes",
    "read-timeout-ms",
    "max-connections",
    "max-batch",
    "journal-dir",
    "journal-sync",
    "journal-segment-bytes",
    "resume",
];

/// `serve` flag whitelist with the deterministic chaos schedule armed
/// (`fault-injection` builds only).
#[cfg(feature = "fault-injection")]
const SERVE_FLAGS: &[&str] = &[
    "host",
    "port",
    "workers",
    "queue-depth",
    "cache",
    "timeout-ms",
    "max-request-bytes",
    "read-timeout-ms",
    "max-connections",
    "max-batch",
    "journal-dir",
    "journal-sync",
    "journal-segment-bytes",
    "resume",
    "fault-seed",
    "fault-panic-rate",
    "fault-panic-budget",
    "fault-cancel-rate",
    "fault-cancel-budget",
    "fault-defer-rate",
    "fault-defer-budget",
    "fault-short-write-rate",
    "fault-short-write-budget",
];

fn main() {
    let cli = match Cli::from_env() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    };
    let outcome = match cli.command() {
        Some(name) => match COMMANDS.iter().find(|(cmd, _, _)| *cmd == name) {
            Some((_, allowed, run)) => cli.expect_flags(allowed).and_then(|()| run(&cli)),
            None => Err(format!("unknown command {name:?}\n\n{USAGE}")),
        },
        None => Err(USAGE.to_string()),
    };
    // `--metrics` applies to every subcommand, including failed ones (a
    // run that errors out mid-pipeline still leaves a usable snapshot).
    let metrics = write_metrics(&cli);
    if let Err(msg) = outcome.and(metrics) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}

/// Writes the observability snapshot to the path given by `--metrics`
/// (no-op when the flag is absent). Must be invoked on every exit path —
/// `cmd_check` calls it directly because its violation branch bypasses
/// `main`'s epilogue via `process::exit(2)`.
fn write_metrics(cli: &Cli) -> Result<(), String> {
    let path: String = cli.get("metrics", String::new())?;
    if path.is_empty() {
        return Ok(());
    }
    std::fs::write(&path, chameleon_obs::metrics_json())
        .map_err(|e| format!("{path}: cannot write metrics: {e}"))
}

const USAGE: &str =
    "usage: chameleon <generate|stats|check|anonymize|attack|profile|compare|mine|synth|serve|submit> ...
run with a command and --help-style flags documented in the crate docs";

fn operand(cli: &Cli, index: usize, what: &str) -> Result<String, String> {
    cli.positional()
        .get(index)
        .cloned()
        .ok_or_else(|| format!("missing {what} operand"))
}

fn load(path: &str) -> Result<UncertainGraph, String> {
    io::read_file(path, DedupPolicy::KeepFirst).map_err(|e| format!("{path}: {e}"))
}

fn knowledge_for(cli: &Cli, graph: &UncertainGraph) -> Result<AdversaryKnowledge, String> {
    match cli.get::<String>("original", String::new())? {
        s if s.is_empty() => Ok(AdversaryKnowledge::expected_degrees(graph)),
        path => {
            let original = load(&path)?;
            if original.num_nodes() != graph.num_nodes() {
                return Err(format!(
                    "original has {} nodes, graph has {}",
                    original.num_nodes(),
                    graph.num_nodes()
                ));
            }
            Ok(AdversaryKnowledge::expected_degrees(&original))
        }
    }
}

fn cmd_generate(cli: &Cli) -> Result<(), String> {
    let out = operand(cli, 0, "output path")?;
    let dataset: String = cli.get("dataset", "brightkite".to_string())?;
    let nodes: usize = cli.get("nodes", 500usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let graph = match dataset.to_lowercase().as_str() {
        "dblp" => chameleon_datasets::dblp_like(nodes, seed),
        "brightkite" => chameleon_datasets::brightkite_like(nodes, seed),
        "ppi" => chameleon_datasets::ppi_like(nodes, seed),
        other => return Err(format!("unknown dataset {other:?} (dblp|brightkite|ppi)")),
    };
    io::write_file(&graph, &out).map_err(|e| e.to_string())?;
    println!("wrote {} ({})", out, GraphSummary::of(&graph));
    Ok(())
}

fn cmd_stats(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    println!("{}", GraphSummary::of(&graph));
    Ok(())
}

fn cmd_check(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let k: usize = cli.require("k")?;
    let epsilon: f64 = cli.get("epsilon", 0.0f64)?;
    let tolerance: u32 = cli.get("tolerance", 0u32)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let report = if tolerance == 0 {
        anonymity_check(&graph, &knowledge, k)
    } else {
        anonymity_check_tolerant(&graph, &knowledge, k, tolerance)
    };
    println!(
        "({k}, {epsilon})-obfuscation: {}",
        if report.satisfies(epsilon) {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    );
    println!(
        "unobfuscated: {} of {} vertices (eps-hat = {:.5})",
        report.unobfuscated.len(),
        graph.num_nodes(),
        report.eps_hat
    );
    if !report.unobfuscated.is_empty() {
        let shown: Vec<String> = report
            .unobfuscated
            .iter()
            .take(10)
            .map(|v| v.to_string())
            .collect();
        println!("first exposed vertices: {}", shown.join(", "));
    }
    if report.satisfies(epsilon) {
        Ok(())
    } else {
        if let Err(msg) = write_metrics(cli) {
            eprintln!("error: {msg}");
        }
        std::process::exit(2);
    }
}

fn cmd_anonymize(cli: &Cli) -> Result<(), String> {
    let input = operand(cli, 0, "input path")?;
    let output = operand(cli, 1, "output path")?;
    let graph = load(&input)?;
    let k: usize = cli.require("k")?;
    let epsilon: f64 = cli.get("epsilon", 0.01f64)?;
    let method: String = cli.get("method", "RSME".to_string())?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let worlds: usize = cli.get("worlds", 500usize)?;
    let trials: usize = cli.get("trials", 5usize)?;
    let threads: usize = cli.get("threads", 0usize)?;
    // `--incremental` reuses each GenObf trial's randomness across the σ
    // search (DESIGN.md §6d); output stays a deterministic function of
    // (seed, config) but can differ from the non-incremental bytes once
    // the search takes more than one probe.
    let incremental = cli.has("incremental");
    // Out-of-core ensembles (DESIGN.md §12): --strip-worlds streams the
    // analysis (bit-identical output); --max-ensemble-bytes turns the
    // tracked-ensemble gauge into a hard, fallible ceiling.
    let strip_worlds: usize = cli.get("strip-worlds", 0usize)?;
    let max_ensemble_bytes: usize = cli.get("max-ensemble-bytes", 0usize)?;
    chameleon_stats::alloc_guard::set_ensemble_limit(max_ensemble_bytes);
    let config = ChameleonConfig {
        k,
        epsilon,
        num_world_samples: worlds,
        trials,
        num_threads: threads,
        incremental,
        strip_worlds,
        ..ChameleonConfig::default()
    };
    config.validate()?;
    let (published, sigma, eps_hat) = if method.eq_ignore_ascii_case("repan") {
        let r = RepAn::new(config)
            .anonymize(&graph, seed)
            .map_err(|e| e.to_string())?;
        (r.graph, r.sigma, r.eps_hat)
    } else {
        let m: Method = method.parse()?;
        let r = Chameleon::new(config)
            .anonymize(&graph, m, seed)
            .map_err(|e| e.to_string())?;
        (r.graph, r.sigma, r.eps_hat)
    };
    io::write_file(&published, &output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} — ({k}, {epsilon})-obfuscated with {method}, sigma = {sigma:.4e}, \
         eps-hat = {eps_hat:.5}, edges {} -> {}",
        output,
        graph.num_edges(),
        published.num_edges()
    );
    Ok(())
}

fn cmd_attack(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let candidates: usize = cli.get("candidates", 1usize)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let report = simulate_degree_attack(&graph, &knowledge, candidates);
    println!(
        "degree-informed Bayesian adversary vs {} vertices:",
        graph.num_nodes()
    );
    println!(
        "  top-1 re-identification rate: {:.4}",
        report.top1_success_rate
    );
    println!(
        "  top-{} candidate-set hit rate:  {:.4}",
        candidates, report.topc_success_rate
    );
    println!(
        "  mean posterior on true id:    {:.4}",
        report.mean_posterior()
    );
    let disclosed = report.disclosed(0.5);
    println!(
        "  practically disclosed (>50% confidence): {} vertices",
        disclosed.len()
    );
    Ok(())
}

fn cmd_profile(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let top: usize = cli.get("top", 10usize)?;
    let knowledge = knowledge_for(cli, &graph)?;
    let profile = PrivacyProfile::compute(&graph, &knowledge);
    for eps in [0.0, 0.01, 0.05] {
        println!("max k at tolerance {eps}: {}", profile.max_k_at(eps));
    }
    println!("least-protected vertices:");
    for (v, h) in profile.weakest(top) {
        println!(
            "  vertex {v:>6}: H = {h:.3} bits (effective anonymity {:.1})",
            h.exp2()
        );
    }
    Ok(())
}

fn cmd_mine(cli: &Cli) -> Result<(), String> {
    let path = operand(cli, 0, "graph path")?;
    let graph = load(&path)?;
    let task: String = cli.get("task", "knn".to_string())?;
    let worlds: usize = cli.get("worlds", 500usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let mut rng = SeedSequence::new(seed).rng("cli-mine");
    let ens = WorldEnsemble::sample(&graph, worlds, &mut rng);
    match task.as_str() {
        "knn" => {
            let source: u32 = cli.get("source", 0u32)?;
            let top: usize = cli.get("top", 10usize)?;
            if source as usize >= graph.num_nodes() {
                return Err(format!("source {source} out of range"));
            }
            println!("top-{top} most reliable nodes from {source}:");
            for nb in chameleon_mining::reliability_knn(&ens, source, top) {
                println!("  node {:>6}  reliability {:.4}", nb.node, nb.reliability);
            }
        }
        "clusters" => {
            let threshold: f64 = cli.get("threshold", 0.5f64)?;
            let min_size: usize = cli.get("min-size", 3usize)?;
            let cs = chameleon_mining::reliable_clusters(&graph, &ens, threshold, min_size);
            println!(
                "{} reliable clusters at threshold {threshold} (min size {min_size}):",
                cs.len()
            );
            for (i, c) in cs.clusters.iter().enumerate().take(20) {
                let preview: Vec<String> = c.iter().take(8).map(|v| v.to_string()).collect();
                let ellipsis = if c.len() > 8 { ", ..." } else { "" };
                println!(
                    "  #{i}: {} nodes [{}{}]",
                    c.len(),
                    preview.join(", "),
                    ellipsis
                );
            }
        }
        "influence" => {
            let k: usize = cli.get("seeds", 5usize)?;
            if k > graph.num_nodes() {
                return Err(format!("--seeds {k} exceeds node count"));
            }
            println!("greedy influence maximization ({k} seeds):");
            for (i, (v, spread)) in chameleon_mining::greedy_seed_selection(&ens, k)
                .into_iter()
                .enumerate()
            {
                println!(
                    "  pick {:>2}: node {v:>6}  cumulative spread {spread:.2}",
                    i + 1
                );
            }
        }
        other => return Err(format!("unknown task {other:?} (knn|clusters|influence)")),
    }
    Ok(())
}

/// Produce a synthetic twin of a graph: matched marginals (default) or an
/// epsilon-differentially-private dK-1 release (`--dp-epsilon`).
fn cmd_synth(cli: &Cli) -> Result<(), String> {
    let input = operand(cli, 0, "input path")?;
    let output = operand(cli, 1, "output path")?;
    let graph = load(&input)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let nodes: usize = cli.get("nodes", graph.num_nodes())?;
    let dp_epsilon: f64 = cli.get("dp-epsilon", 0.0f64)?;
    let twin = if dp_epsilon > 0.0 {
        if nodes != graph.num_nodes() {
            return Err(
                "--nodes cannot be combined with --dp-epsilon (node count is public)".into(),
            );
        }
        chameleon_dp::DpPublisher::new(dp_epsilon).publish(&graph, seed)
    } else {
        chameleon_datasets::synth_like(&graph, nodes, seed)
    };
    io::write_file(&twin, &output).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({}{})",
        output,
        GraphSummary::of(&twin),
        if dp_epsilon > 0.0 {
            format!(", {dp_epsilon}-DP")
        } else {
            String::new()
        }
    );
    Ok(())
}

/// Run the `chameleond` job service in the foreground until a client
/// sends `{"op":"shutdown"}` (graceful drain). `--metrics` doubles as the
/// final-snapshot path written during shutdown.
fn cmd_serve(cli: &Cli) -> Result<(), String> {
    let host: String = cli.get("host", "127.0.0.1".to_string())?;
    let port: u16 = cli.get("port", 7788u16)?;
    let defaults = chameleon_server::ServerConfig::default();
    let config = chameleon_server::ServerConfig {
        addr: format!("{host}:{port}"),
        workers: cli.get("workers", 0usize)?,
        queue_depth: cli.get("queue-depth", 64usize)?,
        cache_capacity: cli.get("cache", 256usize)?,
        default_timeout_ms: cli.get("timeout-ms", 300_000u64)?,
        metrics_path: match cli.get("metrics", String::new())? {
            s if s.is_empty() => None,
            s => Some(s),
        },
        max_request_bytes: cli.get("max-request-bytes", defaults.max_request_bytes)?,
        read_timeout_ms: cli.get("read-timeout-ms", defaults.read_timeout_ms)?,
        max_connections: cli.get("max-connections", defaults.max_connections)?,
        max_batch: cli.get("max-batch", defaults.max_batch)?,
        faults: fault_plan(cli)?,
        journal_dir: match cli.get("journal-dir", String::new())? {
            s if s.is_empty() => None,
            s => Some(s),
        },
        journal_sync: cli
            .get("journal-sync", "interval".to_string())?
            .parse()
            .map_err(|e: String| e)?,
        journal_segment_bytes: cli.get("journal-segment-bytes", defaults.journal_segment_bytes)?,
        resume: cli.has("resume"),
    };
    let server = chameleon_server::Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    eprintln!("chameleond listening on {}", server.local_addr());
    let report = server.run().map_err(|e| format!("serve: {e}"))?;
    println!(
        "served {} jobs ({} failed, {} rejected, {} timed out, {} panicked, {} cancelled)",
        report.jobs_completed,
        report.jobs_failed,
        report.jobs_rejected,
        report.jobs_timed_out,
        report.jobs_panicked,
        report.jobs_cancelled,
    );
    Ok(())
}

/// Run chameleon-gate (DESIGN.md §13): a consistent-hashing gateway that
/// shards jobs across a fleet of chameleond backends by graph digest,
/// health-checks them, and re-drives jobs off dead backends with
/// byte-identical results.
fn cmd_gate(cli: &Cli) -> Result<(), String> {
    let host: String = cli.get("host", "127.0.0.1".to_string())?;
    let port: u16 = cli.get("port", 7789u16)?;
    let backends: String = cli.require("backends")?;
    let defaults = chameleon_server::GatewayConfig::default();
    let config = chameleon_server::GatewayConfig {
        addr: format!("{host}:{port}"),
        backends: backends
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect(),
        forwarders: cli.get("forwarders", defaults.forwarders)?,
        queue_depth: cli.get("queue-depth", defaults.queue_depth)?,
        replicas: cli.get("replicas", defaults.replicas)?,
        health_interval_ms: cli.get("health-interval-ms", defaults.health_interval_ms)?,
        retry: chameleon_server::RetryPolicy {
            io_retries: cli.get("io-retries", defaults.retry.io_retries)?,
            base_delay_ms: cli.get("retry-base-ms", defaults.retry.base_delay_ms)?,
            seed: cli.get("retry-seed", defaults.retry.seed)?,
            ..defaults.retry
        },
        max_request_bytes: cli.get("max-request-bytes", defaults.max_request_bytes)?,
        max_connections: cli.get("max-connections", defaults.max_connections)?,
        max_batch: cli.get("max-batch", defaults.max_batch)?,
        metrics_path: match cli.get("metrics", String::new())? {
            s if s.is_empty() => None,
            s => Some(s),
        },
    };
    let gateway = chameleon_server::Gateway::bind(config).map_err(|e| format!("bind: {e}"))?;
    eprintln!("chameleon-gate listening on {}", gateway.local_addr());
    let report = gateway.run().map_err(|e| format!("gate: {e}"))?;
    println!(
        "forwarded {} lines ({} redriven, {} no-backend errors, {} rejected)",
        report.forwarded, report.redriven, report.no_backend_errors, report.rejected,
    );
    Ok(())
}

/// Builds the deterministic chaos schedule from the `--fault-*` flags
/// (`fault-injection` builds only; production builds always serve `None`).
#[cfg(feature = "fault-injection")]
fn fault_plan(cli: &Cli) -> Result<Option<chameleon_server::FaultPlan>, String> {
    let plan = chameleon_server::FaultPlan::new(cli.get("fault-seed", 0u64)?)
        .with_panics(
            cli.get("fault-panic-rate", 0.0f64)?,
            cli.get("fault-panic-budget", 0u64)?,
        )
        .with_cancels(
            cli.get("fault-cancel-rate", 0.0f64)?,
            cli.get("fault-cancel-budget", 0u64)?,
        )
        .with_deferred_ready(
            cli.get("fault-defer-rate", 0.0f64)?,
            cli.get("fault-defer-budget", 0u64)?,
        )
        .with_short_writes(
            cli.get("fault-short-write-rate", 0.0f64)?,
            cli.get("fault-short-write-budget", 0u64)?,
        );
    Ok(plan.is_active().then_some(plan))
}

#[cfg(not(feature = "fault-injection"))]
fn fault_plan(_cli: &Cli) -> Result<Option<chameleon_server::FaultPlan>, String> {
    Ok(None)
}

/// Send one job to a running daemon and render the reply. An `obfuscate`
/// result graph is written to the output operand with exactly the bytes
/// `chameleon anonymize` would have produced locally.
fn cmd_submit(cli: &Cli) -> Result<(), String> {
    use chameleon_obs::json::{self, Json};
    let host: String = cli.get("host", "127.0.0.1".to_string())?;
    // --via-gateway targets a chameleon-gate front (default port 7789)
    // and widens the retry budgets: a failover re-drive can hold a job
    // for several backoff rounds, so the client should outlast it.
    let via_gateway = cli.has("via-gateway");
    let port: u16 = cli.get("port", if via_gateway { 7789u16 } else { 7788u16 })?;
    let addr = format!("{host}:{port}");
    let job: String = cli.get("job", "obfuscate".to_string())?;

    let mut req = String::from("{");
    let push_field = |req: &mut String, key: &str, value: String| {
        if req.len() > 1 {
            req.push(',');
        }
        req.push_str(&format!("\"{key}\":{value}"));
    };
    push_field(&mut req, "op", json::string(&job));
    let id: String = cli.get("id", String::new())?;
    if !id.is_empty() {
        push_field(&mut req, "id", json::string(&id));
    }
    let timeout_ms: u64 = cli.get("timeout-ms", 0u64)?;
    if timeout_ms > 0 {
        push_field(&mut req, "timeout_ms", timeout_ms.to_string());
    }
    // Ask the daemon to stream oversized responses as chunk frames; the
    // client helper reassembles them, so the rendered reply is identical.
    let chunk_bytes: u64 = cli.get("chunk-bytes", 0u64)?;
    if chunk_bytes > 0 {
        push_field(&mut req, "chunk_bytes", chunk_bytes.to_string());
    }
    let needs_graph = matches!(job.as_str(), "obfuscate" | "check" | "reliability");
    if needs_graph {
        let input = operand(cli, 0, "input path")?;
        let text = std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?;
        push_field(&mut req, "graph", json::string(&text));
        push_field(&mut req, "seed", cli.get("seed", 42u64)?.to_string());
    }
    match job.as_str() {
        "obfuscate" => {
            push_field(&mut req, "k", cli.require::<usize>("k")?.to_string());
            push_field(
                &mut req,
                "epsilon",
                json::number(cli.get("epsilon", 0.01f64)?),
            );
            push_field(
                &mut req,
                "method",
                json::string(&cli.get("method", "RSME".to_string())?),
            );
            push_field(&mut req, "worlds", cli.get("worlds", 500usize)?.to_string());
            push_field(&mut req, "trials", cli.get("trials", 5usize)?.to_string());
            push_field(&mut req, "threads", cli.get("threads", 0usize)?.to_string());
            // Out-of-core execution knob: results are bit-identical, so
            // the server excludes it from the result cache key; omit it
            // entirely at the default to keep request bytes stable.
            let strip_worlds: usize = cli.get("strip-worlds", 0usize)?;
            if strip_worlds > 0 {
                push_field(&mut req, "strip_worlds", strip_worlds.to_string());
            }
        }
        "check" => {
            push_field(&mut req, "k", cli.require::<usize>("k")?.to_string());
            push_field(
                &mut req,
                "epsilon",
                json::number(cli.get("epsilon", 0.0f64)?),
            );
            push_field(
                &mut req,
                "tolerance",
                cli.get("tolerance", 0u32)?.to_string(),
            );
        }
        "reliability" => {
            push_field(&mut req, "worlds", cli.get("worlds", 500usize)?.to_string());
            push_field(&mut req, "pairs", cli.get("pairs", 2000usize)?.to_string());
            push_field(&mut req, "threads", cli.get("threads", 0usize)?.to_string());
        }
        "status" | "shutdown" => {}
        other => {
            return Err(format!(
                "unknown job {other:?} (obfuscate|check|reliability|status|shutdown)"
            ))
        }
    }
    req.push('}');

    // Retryable rejections (the server marks them with `retry_after_ms`:
    // queue full, injected faults) are retried with seeded-jitter backoff;
    // reusing the job seed keeps the whole submit schedule reproducible.
    let defaults = chameleon_server::RetryPolicy::default();
    let policy = chameleon_server::RetryPolicy {
        max_retries: cli.get("retries", if via_gateway { 8 } else { 3u32 })?,
        base_delay_ms: cli.get("retry-base-ms", 50u64)?,
        io_retries: cli.get(
            "io-retries",
            if via_gateway { 8 } else { defaults.io_retries },
        )?,
        seed: cli.get("seed", 42u64)?,
        ..defaults
    };
    let line = chameleon_server::request_with_retry(&addr, &req, &policy)
        .map_err(|e| format!("{addr}: {e}"))?;
    let v = Json::parse(&line).map_err(|e| format!("bad response from server: {e}"))?;
    let status = v.get("status").and_then(Json::as_str).unwrap_or("?");
    if status != "ok" {
        let msg = v
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("malformed error response");
        return Err(match v.get("retry_after_ms").and_then(Json::as_u64) {
            Some(ms) => format!("server rejected the job: {msg} (retry after {ms} ms)"),
            None => format!("server rejected the job: {msg}"),
        });
    }
    let cached = v.get("cached").and_then(Json::as_bool).unwrap_or(false);
    let result = v.get("result").ok_or("response missing result")?;
    if job == "obfuscate" {
        let output = operand(cli, 1, "output path")?;
        let graph = result
            .get("graph")
            .and_then(Json::as_str)
            .ok_or("result missing graph")?;
        std::fs::write(&output, graph).map_err(|e| format!("{output}: {e}"))?;
        let num = |key: &str| result.get(key).and_then(Json::as_f64).unwrap_or(f64::NAN);
        println!(
            "wrote {output} — sigma = {:.4e}, eps-hat = {:.5}, {} GenObf calls{}",
            num("sigma"),
            num("eps_hat"),
            result
                .get("genobf_calls")
                .and_then(Json::as_u64)
                .unwrap_or(0),
            if cached { " (cache hit)" } else { "" },
        );
    } else {
        println!(
            "{}{}",
            result.render(),
            if cached { " (cache hit)" } else { "" }
        );
    }
    Ok(())
}

fn cmd_compare(cli: &Cli) -> Result<(), String> {
    let a_path = operand(cli, 0, "first graph path")?;
    let b_path = operand(cli, 1, "second graph path")?;
    let a = load(&a_path)?;
    let b = load(&b_path)?;
    if a.num_nodes() != b.num_nodes() {
        return Err("graphs must share a node set".into());
    }
    let worlds: usize = cli.get("worlds", 500usize)?;
    let pairs: usize = cli.get("pairs", 2000usize)?;
    let seed: u64 = cli.get("seed", 42u64)?;
    let seq = SeedSequence::new(seed);
    let pair_set = sample_distinct_pairs(a.num_nodes(), pairs, &mut seq.rng("pairs"));
    let ens_a = WorldEnsemble::sample(&a, worlds, &mut seq.rng("a"));
    let ens_b = WorldEnsemble::sample(&b, worlds, &mut seq.rng("b"));
    let rep = avg_reliability_discrepancy(&ens_a, &ens_b, &pair_set);
    println!(
        "avg reliability discrepancy: {:.5} (± {:.5} s.e., max {:.4})",
        rep.avg, rep.std_error, rep.max
    );
    println!(
        "expected average degree: {:.4} vs {:.4}",
        a.expected_average_degree(),
        b.expected_average_degree()
    );
    println!(
        "mean edge probability:   {:.4} vs {:.4}",
        a.mean_edge_prob(),
        b.mean_edge_prob()
    );
    Ok(())
}
