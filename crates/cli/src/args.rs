//! Flag parsing for the `chameleon` CLI (dependency-free).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional operands, `--flag value`
/// pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    command: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Cli {
    /// Parses process arguments (program name skipped).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator. The first non-flag token is
    /// the subcommand.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Cli::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    let value = iter.next().expect("peeked");
                    out.flags.insert(name.to_string(), value);
                } else {
                    out.switches.push(name.to_string());
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positional.push(arg);
            }
        }
        out
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Positional operands after the subcommand.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Typed flag with default.
    ///
    /// # Errors
    /// Returns a message naming the flag on parse failure.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// Required flag.
    ///
    /// # Errors
    /// Returns a message when the flag is missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        match self.flags.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// True when `--name` was given (as switch or with a value).
    #[allow(dead_code)] // part of the parser's public surface; used in tests
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Cli {
        Cli::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_and_operands() {
        let c = parse(&["anonymize", "in.txt", "out.txt", "--k", "20"]);
        assert_eq!(c.command(), Some("anonymize"));
        assert_eq!(
            c.positional(),
            &["in.txt".to_string(), "out.txt".to_string()]
        );
        assert_eq!(c.get("k", 0usize).unwrap(), 20);
    }

    #[test]
    fn require_reports_missing() {
        let c = parse(&["check"]);
        assert!(c.require::<usize>("k").unwrap_err().contains("--k"));
    }

    #[test]
    fn invalid_value_is_error_not_panic() {
        let c = parse(&["check", "--k", "abc"]);
        assert!(c.get("k", 1usize).is_err());
    }

    #[test]
    fn empty_command_line() {
        let c = parse(&[]);
        assert_eq!(c.command(), None);
        assert!(c.positional().is_empty());
    }

    #[test]
    fn switches() {
        let c = parse(&["stats", "g.txt", "--verbose"]);
        assert!(c.has("verbose"));
        assert!(!c.has("quiet"));
    }
}
