//! Flag parsing for the `chameleon` CLI (dependency-free).
//!
//! Strictness contract: a flag given twice is a parse error, and every
//! subcommand declares the flags it accepts ([`Cli::expect_flags`]) so a
//! misspelled or misplaced `--flag` fails with a message listing the valid
//! ones instead of being silently ignored.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional operands, `--flag value`
/// pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    command: Option<String>,
    flags: HashMap<String, String>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Cli {
    /// Parses process arguments (program name skipped).
    ///
    /// # Errors
    /// Returns a message on duplicated flags.
    pub fn from_env() -> Result<Self, String> {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit argument iterator. The first non-flag token is
    /// the subcommand.
    ///
    /// # Errors
    /// Returns a message when the same `--flag` appears more than once
    /// (in either value or switch form).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Cli::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let (key, value) = if let Some((k, v)) = name.split_once('=') {
                    (k.to_string(), Some(v.to_string()))
                } else if iter
                    .peek()
                    .map(|next| !next.starts_with("--"))
                    .unwrap_or(false)
                {
                    (name.to_string(), Some(iter.next().expect("peeked")))
                } else {
                    (name.to_string(), None)
                };
                let seen = out.flags.contains_key(&key) || out.switches.iter().any(|s| s == &key);
                if seen {
                    return Err(format!("duplicate flag --{key}"));
                }
                match value {
                    Some(v) => {
                        out.flags.insert(key, v);
                    }
                    None => out.switches.push(key),
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                out.positional.push(arg);
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Positional operands after the subcommand.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Rejects any flag or switch not in `allowed`. The global `--metrics`
    /// flag is always accepted; call this once per subcommand before
    /// reading flags so typos fail loudly instead of falling back to
    /// defaults.
    ///
    /// # Errors
    /// Returns a message naming the unknown flag and listing the valid
    /// ones.
    pub fn expect_flags(&self, allowed: &[&str]) -> Result<(), String> {
        let known = |name: &str| name == "metrics" || allowed.contains(&name);
        let unknown = self
            .flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .find(|name| !known(name));
        match unknown {
            None => Ok(()),
            Some(name) => {
                let mut expected: Vec<&str> = allowed.to_vec();
                expected.sort_unstable();
                let listing = if expected.is_empty() {
                    "only the global --metrics".to_string()
                } else {
                    format!(
                        "--metrics and {}",
                        expected
                            .iter()
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                Err(format!(
                    "unknown flag --{name} for {:?} (valid flags: {listing})",
                    self.command.as_deref().unwrap_or("")
                ))
            }
        }
    }

    /// Typed flag with default.
    ///
    /// # Errors
    /// Returns a message naming the flag on parse failure.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// Required flag.
    ///
    /// # Errors
    /// Returns a message when the flag is missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        match self.flags.get(name) {
            None => Err(format!("missing required flag --{name}")),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// True when `--name` was given (as switch or with a value).
    #[allow(dead_code)] // part of the parser's public surface; used in tests
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Cli {
        Cli::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn subcommand_and_operands() {
        let c = parse(&["anonymize", "in.txt", "out.txt", "--k", "20"]);
        assert_eq!(c.command(), Some("anonymize"));
        assert_eq!(
            c.positional(),
            &["in.txt".to_string(), "out.txt".to_string()]
        );
        assert_eq!(c.get("k", 0usize).unwrap(), 20);
    }

    #[test]
    fn require_reports_missing() {
        let c = parse(&["check"]);
        assert!(c.require::<usize>("k").unwrap_err().contains("--k"));
    }

    #[test]
    fn invalid_value_is_error_not_panic() {
        let c = parse(&["check", "--k", "abc"]);
        assert!(c.get("k", 1usize).is_err());
    }

    #[test]
    fn empty_command_line() {
        let c = parse(&[]);
        assert_eq!(c.command(), None);
        assert!(c.positional().is_empty());
    }

    #[test]
    fn switches() {
        let c = parse(&["stats", "g.txt", "--verbose"]);
        assert!(c.has("verbose"));
        assert!(!c.has("quiet"));
    }

    #[test]
    fn duplicate_flag_is_an_error() {
        let err = Cli::parse(
            ["check", "--k", "2", "--k", "3"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap_err();
        assert!(err.contains("duplicate flag --k"), "{err}");
        // Equals form and switch form collide with value form too.
        assert!(Cli::parse(["check", "--k=2", "--k", "3"].iter().map(|s| s.to_string())).is_err());
        assert!(Cli::parse(
            ["stats", "--verbose", "--verbose"]
                .iter()
                .map(|s| s.to_string())
        )
        .is_err());
    }

    #[test]
    fn unknown_flag_is_rejected_with_the_valid_list() {
        let c = parse(&["check", "g.txt", "--kk", "2"]);
        let err = c.expect_flags(&["k", "epsilon"]).unwrap_err();
        assert!(err.contains("--kk"), "{err}");
        assert!(err.contains("--epsilon"), "{err}");
        assert!(err.contains("--metrics"), "{err}");
    }

    #[test]
    fn expect_flags_accepts_known_and_global_metrics() {
        let c = parse(&["check", "g.txt", "--k", "2", "--metrics", "m.json"]);
        assert!(c.expect_flags(&["k", "epsilon"]).is_ok());
    }

    #[test]
    fn unknown_switch_is_rejected_too() {
        let c = parse(&["stats", "g.txt", "--fast"]);
        assert!(c.expect_flags(&[]).unwrap_err().contains("--fast"));
    }
}
