//! End-to-end tests of the `chameleon` binary: generate → check →
//! anonymize → re-check → attack → compare, via real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn chameleon(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chameleon"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chameleon-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_via_binary() {
    let dir = temp_dir("pipeline");
    let graph = dir.join("g.txt");
    let anon = dir.join("anon.txt");
    let graph_s = graph.to_str().unwrap();
    let anon_s = anon.to_str().unwrap();

    // generate
    let out = chameleon(&[
        "generate",
        graph_s,
        "--dataset",
        "brightkite",
        "--nodes",
        "200",
        "--seed",
        "3",
    ]);
    assert!(out.status.success(), "{out:?}");
    assert!(graph.exists());

    // stats
    let out = chameleon(&["stats", graph_s]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("n=200"));

    // anonymize (small budget for test speed)
    let out = chameleon(&[
        "anonymize",
        graph_s,
        anon_s,
        "--k",
        "15",
        "--epsilon",
        "0.05",
        "--worlds",
        "80",
        "--trials",
        "2",
        "--seed",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(anon.exists());

    // check against the original: must pass with exit code 0
    let out = chameleon(&[
        "check",
        anon_s,
        "--k",
        "15",
        "--epsilon",
        "0.05",
        "--original",
        graph_s,
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("SATISFIED"));

    // attack report runs
    let out = chameleon(&["attack", anon_s, "--original", graph_s]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("top-1"));

    // profile runs
    let out = chameleon(&["profile", graph_s, "--top", "2"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("max k at tolerance"));

    // compare runs
    let out = chameleon(&[
        "compare", graph_s, anon_s, "--worlds", "80", "--pairs", "200",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("avg reliability discrepancy"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_violation_exits_nonzero() {
    let dir = temp_dir("violation");
    let graph = dir.join("g.txt");
    let graph_s = graph.to_str().unwrap();
    chameleon(&[
        "generate",
        graph_s,
        "--dataset",
        "dblp",
        "--nodes",
        "150",
        "--seed",
        "5",
    ]);
    // k close to n cannot hold without tolerance.
    let out = chameleon(&["check", graph_s, "--k", "149", "--epsilon", "0"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(stdout(&out).contains("VIOLATED"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = chameleon(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_operand_reports_error() {
    let out = chameleon(&["stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("graph path"));
}

#[test]
fn synth_twin_and_dp() {
    let dir = temp_dir("synth");
    let graph = dir.join("g.txt");
    let twin = dir.join("twin.txt");
    let dp = dir.join("dp.txt");
    chameleon(&[
        "generate",
        graph.to_str().unwrap(),
        "--dataset",
        "ppi",
        "--nodes",
        "120",
        "--seed",
        "2",
    ]);
    let out = chameleon(&[
        "synth",
        graph.to_str().unwrap(),
        twin.to_str().unwrap(),
        "--nodes",
        "80",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("n=80"));
    let out = chameleon(&[
        "synth",
        graph.to_str().unwrap(),
        dp.to_str().unwrap(),
        "--dp-epsilon",
        "1.0",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("1-DP"));
    // --nodes + --dp-epsilon is rejected.
    let out = chameleon(&[
        "synth",
        graph.to_str().unwrap(),
        dp.to_str().unwrap(),
        "--dp-epsilon",
        "1.0",
        "--nodes",
        "50",
    ]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mine_tasks_run() {
    let dir = temp_dir("mine");
    let graph = dir.join("g.txt");
    let g = graph.to_str().unwrap();
    chameleon(&[
        "generate",
        g,
        "--dataset",
        "brightkite",
        "--nodes",
        "150",
        "--seed",
        "8",
    ]);
    let out = chameleon(&[
        "mine", g, "--task", "knn", "--source", "0", "--top", "5", "--worlds", "100",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("reliability"));
    let out = chameleon(&["mine", g, "--task", "clusters", "--worlds", "100"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("reliable clusters"));
    let out = chameleon(&[
        "mine",
        g,
        "--task",
        "influence",
        "--seeds",
        "3",
        "--worlds",
        "100",
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("pick"));
    let out = chameleon(&["mine", g, "--task", "bogus"]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repan_method_available() {
    let dir = temp_dir("repan");
    let graph = dir.join("g.txt");
    let anon = dir.join("anon.txt");
    chameleon(&[
        "generate",
        graph.to_str().unwrap(),
        "--dataset",
        "dblp",
        "--nodes",
        "150",
        "--seed",
        "7",
    ]);
    let out = chameleon(&[
        "anonymize",
        graph.to_str().unwrap(),
        anon.to_str().unwrap(),
        "--k",
        "5",
        "--epsilon",
        "0.08",
        "--method",
        "repan",
        "--worlds",
        "60",
        "--trials",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("repan"));
    std::fs::remove_dir_all(&dir).ok();
}
