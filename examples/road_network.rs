//! Weighted uncertain road network (the paper's §II motivation for why
//! probabilities cannot be folded into weights).
//!
//! Each road segment has a travel time (weight) and an availability
//! probability (1 − chance of a traffic jam). The operator publishes an
//! anonymized network; travel times ride along unchanged while the
//! availability probabilities are obfuscated. We check that expected
//! travel times survive the release.
//!
//! Run with: `cargo run --release --example road_network`

use chameleon::prelude::*;
use chameleon::ugraph::weighted::{expected_weighted_distances, WeightedUncertainGraph};

fn main() {
    // A grid-ish road network: 12×12 intersections.
    let side = 12u32;
    let n = (side * side) as usize;
    let mut g = UncertainGraph::with_nodes(n);
    let mut weights = Vec::new();
    let seq = SeedSequence::new(5150);
    let mut rng = seq.rng("roads");
    use rand::Rng;
    let idx = |r: u32, c: u32| r * side + c;
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                g.add_edge(idx(r, c), idx(r, c + 1), 0.55 + 0.4 * rng.gen::<f64>())
                    .unwrap();
                weights.push(1.0 + 4.0 * rng.gen::<f64>()); // minutes
            }
            if r + 1 < side {
                g.add_edge(idx(r, c), idx(r + 1, c), 0.55 + 0.4 * rng.gen::<f64>())
                    .unwrap();
                weights.push(1.0 + 4.0 * rng.gen::<f64>());
            }
        }
    }
    let roads = WeightedUncertainGraph::new(g.clone(), weights);
    println!(
        "road network: {} intersections, {} segments (mean availability {:.2})",
        n,
        g.num_edges(),
        g.mean_edge_prob()
    );

    // Expected travel times before release.
    let mut world_rng = seq.rng("worlds");
    let worlds = WorldSampler::sample_many(&g, 120, &mut world_rng);
    let sources: Vec<u32> = vec![idx(0, 0), idx(6, 6), idx(11, 11)];
    let before = expected_weighted_distances(&roads, &worlds, &sources);
    println!(
        "original: mean expected travel time {:.2} min over {:.0} reachable pairs/world",
        before.mean_distance,
        before.avg_reachable_pairs / 120.0
    );

    // Publish with Chameleon.
    let config = ChameleonConfig::builder()
        .k(20)
        .epsilon(0.03)
        .num_world_samples(250)
        .trials(3)
        .build();
    let release = Chameleon::new(config)
        .anonymize(&g, Method::Rsme, 11)
        .expect("anonymization succeeds");
    println!(
        "release: (20, 0.03)-obfuscated, sigma = {:.2e}, segments {} -> {}",
        release.sigma,
        g.num_edges(),
        release.graph.num_edges()
    );

    // Travel times on the release: original weights kept, injected
    // segments get the median segment time.
    let published_roads = roads.with_published(release.graph.clone(), 3.0);
    let mut world_rng2 = seq.rng("worlds-pub");
    let pub_worlds = WorldSampler::sample_many(published_roads.graph(), 120, &mut world_rng2);
    let after = expected_weighted_distances(&published_roads, &pub_worlds, &sources);
    println!(
        "release:  mean expected travel time {:.2} min over {:.0} reachable pairs/world",
        after.mean_distance,
        after.avg_reachable_pairs / 120.0
    );
    let rel_err = (after.mean_distance - before.mean_distance).abs() / before.mean_distance;
    println!(
        "expected travel-time relative error: {:.1}%",
        100.0 * rel_err
    );
}
