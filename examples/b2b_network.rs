//! B2B transaction network scenario (paper Motivation Scenario II).
//!
//! A marketplace holds a graph of predicted future transactions between
//! companies (edge probability = likelihood of a deal). It must publish the
//! graph for advertisement-targeting research without exposing any
//! company's transaction profile. This example runs all four methods from
//! the paper's evaluation (Table II), prints the utility comparison, and
//! writes the chosen release to disk in the text interchange format.
//!
//! Run with: `cargo run --release --example b2b_network`

use chameleon::prelude::*;
use chameleon::ugraph::io;

const K: usize = 50;
const EPSILON: f64 = 0.02;

struct Comparison {
    name: &'static str,
    eps_hat: f64,
    reliability_err: f64,
    degree_err: f64,
    graph: UncertainGraph,
}

fn main() {
    // DBLP-like discrete probability structure models a B2B predictor that
    // emits confidence levels.
    let graph = dblp_like(600, 4242);
    println!(
        "B2B network: {} companies, {} predicted transactions, mean likelihood {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_edge_prob()
    );

    let seq = SeedSequence::new(5);
    let pairs = sample_distinct_pairs(graph.num_nodes(), 1000, &mut seq.rng("pairs"));
    let orig_ens = WorldEnsemble::sample(&graph, 400, &mut seq.rng("orig"));
    let config = ChameleonConfig::builder()
        .k(K)
        .epsilon(EPSILON)
        .num_world_samples(300)
        .trials(3)
        .build();

    let mut results: Vec<Comparison> = Vec::new();
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let out = Chameleon::new(config.clone())
            .anonymize(&graph, method, 17)
            .expect("obfuscation should succeed");
        let ens = WorldEnsemble::sample(&out.graph, 400, &mut seq.rng(method.name()));
        results.push(Comparison {
            name: method.name(),
            eps_hat: out.eps_hat,
            reliability_err: avg_reliability_discrepancy(&orig_ens, &ens, &pairs).avg,
            degree_err: (out.graph.expected_average_degree() - graph.expected_average_degree())
                .abs()
                / graph.expected_average_degree(),
            graph: out.graph,
        });
    }
    match RepAn::new(config).anonymize(&graph, 17) {
        Ok(repan) => {
            let ens = WorldEnsemble::sample(&repan.graph, 400, &mut seq.rng("repan"));
            results.push(Comparison {
                name: "Rep-An",
                eps_hat: repan.eps_hat,
                reliability_err: avg_reliability_discrepancy(&orig_ens, &ens, &pairs).avg,
                degree_err: (repan.graph.expected_average_degree()
                    - graph.expected_average_degree())
                .abs()
                    / graph.expected_average_degree(),
                graph: repan.graph,
            });
        }
        Err(e) => {
            println!("\nnote: Rep-An baseline could not reach ({K}, {EPSILON})-obfuscation: {e}")
        }
    }

    println!("\nmethod comparison at ({K}, {EPSILON})-obfuscation:");
    println!(
        "{:<8} {:>9} {:>18} {:>12}",
        "method", "eps-hat", "reliability-err", "degree-err"
    );
    for r in &results {
        println!(
            "{:<8} {:>9.4} {:>18.4} {:>12.4}",
            r.name, r.eps_hat, r.reliability_err, r.degree_err
        );
    }

    // Publish the best (lowest reliability error among private releases).
    let best = results
        .iter()
        .min_by(|a, b| a.reliability_err.partial_cmp(&b.reliability_err).unwrap())
        .expect("at least one method succeeded");
    let out_dir = std::env::temp_dir().join("chameleon-b2b");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = out_dir.join("b2b_release.txt");
    io::write_file(&best.graph, &path).expect("write release");
    println!(
        "\npublishing {} release to {} ({} edges)",
        best.name,
        path.display(),
        best.graph.num_edges()
    );

    // Round-trip sanity: a consumer can load the release.
    let loaded = io::read_file(&path, chameleon::ugraph::builder::DedupPolicy::Reject)
        .expect("release must parse");
    assert_eq!(loaded.num_edges(), best.graph.num_edges());
    println!("release verified: consumer round-trip OK.");
}
