//! Downstream mining on a published graph: does research still work on
//! the anonymized release?
//!
//! A researcher receives a (k, ε)-obfuscated social network and runs the
//! three analyses the paper motivates: reliable nearest neighbors
//! (recommendation), reliable clusters (community detection), and
//! influence maximization (marketing). This example runs each task on the
//! original and the release and reports answer agreement.
//!
//! Run with: `cargo run --release --example mining_study`

use chameleon::mining::{cluster_agreement, rank_overlap_at_k};
use chameleon::prelude::*;

fn main() {
    let graph = brightkite_like(400, 2024);
    println!(
        "social network: {} users, {} probabilistic ties",
        graph.num_nodes(),
        graph.num_edges()
    );

    let config = ChameleonConfig::builder()
        .k(40)
        .epsilon(0.02)
        .num_world_samples(300)
        .trials(3)
        .build();
    let release = Chameleon::new(config)
        .anonymize(&graph, Method::Rsme, 99)
        .expect("anonymization succeeds");
    println!(
        "release: (40, 0.02)-obfuscated, sigma = {:.2e}, {} edges\n",
        release.sigma,
        release.graph.num_edges()
    );

    let seq = SeedSequence::new(7);
    let ens_orig = WorldEnsemble::sample(&graph, 400, &mut seq.rng("orig"));
    let ens_pub = WorldEnsemble::sample(&release.graph, 400, &mut seq.rng("pub"));

    // ---- Task 1: reliable kNN for a handful of users.
    println!("task 1 — top-5 most reliable contacts (original vs release):");
    let mut knn_scores = Vec::new();
    for &user in &[0u32, 25, 50, 75] {
        let orig: Vec<u32> = reliability_knn(&ens_orig, user, 5)
            .into_iter()
            .map(|n| n.node)
            .collect();
        let publ: Vec<u32> = reliability_knn(&ens_pub, user, 5)
            .into_iter()
            .map(|n| n.node)
            .collect();
        let overlap = rank_overlap_at_k(&orig, &publ, 5);
        knn_scores.push(overlap);
        println!("  user {user:>3}: overlap@5 = {overlap:.2}  ({orig:?} vs {publ:?})");
    }

    // ---- Task 2: reliable communities.
    let c_orig = reliable_clusters(&graph, &ens_orig, 0.4, 3);
    let c_pub = reliable_clusters(&release.graph, &ens_pub, 0.4, 3);
    let agreement = cluster_agreement(&c_orig.clusters, &c_pub.clusters);
    println!(
        "\ntask 2 — reliable communities: {} vs {} clusters, agreement {:.3}",
        c_orig.len(),
        c_pub.len(),
        agreement
    );

    // ---- Task 3: influence maximization.
    let seeds_orig: Vec<u32> = greedy_seed_selection(&ens_orig, 5)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    let seeds_pub: Vec<u32> = greedy_seed_selection(&ens_pub, 5)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    // The question that matters to the marketer: how well do the seeds
    // chosen FROM THE RELEASE perform ON THE TRUE network?
    let best_possible = influence_spread(&ens_orig, &seeds_orig);
    let achieved = influence_spread(&ens_orig, &seeds_pub);
    println!(
        "\ntask 3 — influence maximization: release-chosen seeds achieve {:.1} \
         of {:.1} possible spread ({:.1}%)",
        achieved,
        best_possible,
        100.0 * achieved / best_possible
    );
    println!("  seeds: {seeds_orig:?} (true) vs {seeds_pub:?} (from release)");

    let mean_knn = knn_scores.iter().sum::<f64>() / knn_scores.len() as f64;
    println!(
        "\nsummary: knn overlap {mean_knn:.2}, cluster agreement {agreement:.2}, \
         influence retention {:.2}",
        achieved / best_possible
    );
}
