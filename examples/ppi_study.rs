//! Protein–protein interaction study (the paper's PPI dataset scenario).
//!
//! PPI edges carry experimental confidence values; biologists mine the
//! graph for protein complexes (dense, reliable clusters — paper refs [4],
//! [38]). Publishing the network must not let an adversary re-identify
//! proteins by their interaction counts, but complex detection depends on
//! local connectivity (clustering, reliability) being preserved. This
//! example anonymizes a PPI-like network and checks the mining-relevant
//! statistics before and after.
//!
//! Run with: `cargo run --release --example ppi_study`

use chameleon::prelude::*;
use chameleon::reliability::metrics::clustering::{exact_expected_triangles, expected_clustering};

fn main() {
    let graph = ppi_like(500, 77);
    println!(
        "PPI network: {} proteins, {} scored interactions, mean confidence {:.2}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_edge_prob()
    );

    let config = ChameleonConfig::builder()
        .k(75)
        .epsilon(0.02)
        .num_world_samples(300)
        .trials(3)
        .build();
    let result = Chameleon::new(config)
        .anonymize(&graph, Method::Rsme, 3)
        .expect("obfuscation should succeed");
    println!(
        "published: (75, 0.02)-obfuscated, eps-hat {:.4}, sigma {:.4}\n",
        result.eps_hat, result.sigma
    );

    let seq = SeedSequence::new(11);

    // ---- Complex-detection proxies: triangles & clustering coefficient.
    let tri_orig = exact_expected_triangles(&graph);
    let tri_pub = exact_expected_triangles(&result.graph);
    println!("expected triangles: {tri_orig:.1} -> {tri_pub:.1}");
    let ens_orig = WorldEnsemble::sample(&graph, 60, &mut seq.rng("cc-orig"));
    let ens_pub = WorldEnsemble::sample(&result.graph, 60, &mut seq.rng("cc-pub"));
    let cc_orig = expected_clustering(&graph, &ens_orig);
    let cc_pub = expected_clustering(&result.graph, &ens_pub);
    println!(
        "expected clustering coefficient: {:.4} -> {:.4} (relative error {:.2}%)",
        cc_orig.clustering_coefficient,
        cc_pub.clustering_coefficient,
        100.0 * (cc_orig.clustering_coefficient - cc_pub.clustering_coefficient).abs()
            / cc_orig.clustering_coefficient.max(1e-12)
    );

    // ---- Reliability of the strongest interactions: would a biologist
    //      still find the same reliable partners?
    let big_orig = WorldEnsemble::sample(&graph, 500, &mut seq.rng("rel-orig"));
    let big_pub = WorldEnsemble::sample(&result.graph, 500, &mut seq.rng("rel-pub"));
    let mut strongest: Vec<(u32, u32, f64)> =
        graph.edges().iter().map(|e| (e.u, e.v, e.p)).collect();
    strongest.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    println!("\nreliability of the 8 highest-confidence interactions:");
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>10}",
        "u", "v", "p(e)", "R orig", "R publ"
    );
    let mut worst_gap = 0.0f64;
    for &(u, v, p) in strongest.iter().take(8) {
        let r_orig = big_orig.two_terminal_reliability(u, v);
        let r_pub = big_pub.two_terminal_reliability(u, v);
        worst_gap = worst_gap.max((r_orig - r_pub).abs());
        println!("{u:>6} {v:>6} {p:>8.3} {r_orig:>10.3} {r_pub:>10.3}");
    }
    println!("worst reliability gap among them: {worst_gap:.3}");

    // ---- The privacy side: the proteins that needed the most protection.
    let knowledge = AdversaryKnowledge::expected_degrees(&graph);
    let before = anonymity_check(&graph, &knowledge, 75);
    println!(
        "\nprivacy: raw graph exposed {} proteins; published graph exposes {} \
         (tolerance allows {})",
        before.unobfuscated.len(),
        result.report.unobfuscated.len(),
        (0.02 * graph.num_nodes() as f64) as usize
    );
}
