//! Social trust network scenario (paper Motivation Scenario I).
//!
//! A location-based social network wants to share its probabilistic
//! friendship/visit graph with researchers. An adversary who knows a
//! target's (approximate) number of contacts can try to re-identify them in
//! the release. This example contrasts:
//!
//! 1. a naive release (no anonymization) — many users re-identifiable,
//! 2. the Rep-An baseline — private but structurally damaged,
//! 3. Chameleon RSME — private *and* structure-preserving.
//!
//! Run with: `cargo run --release --example social_trust`

use chameleon::prelude::*;

const K: usize = 100;
const EPSILON: f64 = 0.02;

fn reliability_error(original: &UncertainGraph, published: &UncertainGraph, tag: &str) -> f64 {
    let seq = SeedSequence::new(2024);
    let pairs = sample_distinct_pairs(original.num_nodes(), 800, &mut seq.rng("pairs"));
    let a = WorldEnsemble::sample(original, 400, &mut seq.rng("orig"));
    let b = WorldEnsemble::sample(published, 400, &mut seq.rng(tag));
    avg_reliability_discrepancy(&a, &b, &pairs).avg
}

fn main() {
    let graph = brightkite_like(500, 99);
    let knowledge = AdversaryKnowledge::expected_degrees(&graph);
    println!(
        "social trust network: {} users, {} probabilistic ties (mean p {:.2})",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_edge_prob()
    );

    // --- Naive release.
    let naive = anonymity_check(&graph, &knowledge, K);
    println!(
        "\n[naive release]    {} of {} users are NOT {K}-obfuscated ({:.1}%)",
        naive.unobfuscated.len(),
        graph.num_nodes(),
        100.0 * naive.eps_hat
    );
    println!("                   a degree-informed adversary can single them out.");

    let config = ChameleonConfig::builder()
        .k(K)
        .epsilon(EPSILON)
        .num_world_samples(300)
        .trials(3)
        .build();

    // --- Rep-An baseline.
    match RepAn::new(config.clone()).anonymize(&graph, 7) {
        Ok(repan) => {
            let err = reliability_error(&graph, &repan.graph, "repan");
            println!(
                "\n[Rep-An baseline]  ({K}, {EPSILON})-obfuscated (eps-hat {:.4}), \
                 but avg reliability discrepancy = {err:.4}",
                repan.eps_hat
            );
        }
        Err(e) => println!("\n[Rep-An baseline]  failed: {e}"),
    }

    // --- Chameleon.
    let result = Chameleon::new(config)
        .anonymize(&graph, Method::Rsme, 7)
        .expect("chameleon should obfuscate this network");
    let err = reliability_error(&graph, &result.graph, "chameleon");
    println!(
        "\n[Chameleon RSME]   ({K}, {EPSILON})-obfuscated (eps-hat {:.4}), \
         avg reliability discrepancy = {err:.4}",
        result.eps_hat
    );
    println!(
        "                   noise level sigma = {:.3}, {} GenObf calls",
        result.sigma, result.genobf_calls
    );

    // --- Who was hardest to protect?
    let mut scored: Vec<(u32, f64)> = result
        .uniqueness
        .iter()
        .enumerate()
        .map(|(v, &u)| (v as u32, u))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost unique users (hardest to hide):");
    for (v, u) in scored.iter().take(5) {
        println!(
            "  user {v:>4}: expected degree {:>6.2}, uniqueness {:.3e}",
            graph.expected_degree(*v),
            u
        );
    }
}
