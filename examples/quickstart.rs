//! Quickstart: anonymize a small uncertain graph and verify the privacy
//! guarantee.
//!
//! Run with: `cargo run --release --example quickstart`

use chameleon::prelude::*;

fn main() {
    // ---- 1. Build an uncertain graph (here: a synthetic social network).
    let graph = brightkite_like(500, /* seed */ 7);
    println!(
        "original graph: {} nodes, {} edges, mean edge probability {:.3}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.mean_edge_prob()
    );

    // ---- 2. Check how exposed the raw graph is: how many vertices would
    //         an adversary with degree knowledge re-identify at k = 75?
    let knowledge = AdversaryKnowledge::expected_degrees(&graph);
    let raw = anonymity_check(&graph, &knowledge, 75);
    println!(
        "raw release: {} vertices ({:.2}%) are NOT 75-obfuscated",
        raw.unobfuscated.len(),
        100.0 * raw.eps_hat
    );

    // ---- 3. Anonymize with Chameleon (RSME = full method).
    let config = ChameleonConfig::builder()
        .k(75)
        .epsilon(0.01)
        .num_world_samples(300)
        .trials(3)
        .build();
    let result = Chameleon::new(config)
        .anonymize(&graph, Method::Rsme, 42)
        .expect("anonymization should succeed at k = 75");
    println!(
        "published graph: {} edges, sigma = {:.3}, unobfuscated fraction = {:.4}",
        result.graph.num_edges(),
        result.sigma,
        result.eps_hat
    );
    assert!(result.eps_hat <= 0.01, "privacy guarantee must hold");

    // ---- 4. Measure the utility cost: average reliability discrepancy
    //         between the original and published graphs.
    let seq = SeedSequence::new(1);
    let pairs = sample_distinct_pairs(graph.num_nodes(), 500, &mut seq.rng("pairs"));
    let orig_ens = WorldEnsemble::sample(&graph, 400, &mut seq.rng("orig"));
    let pub_ens = WorldEnsemble::sample(&result.graph, 400, &mut seq.rng("pub"));
    let discrepancy = avg_reliability_discrepancy(&orig_ens, &pub_ens, &pairs);
    println!(
        "utility: avg reliability discrepancy = {:.4} (max {:.4} over {} pairs)",
        discrepancy.avg, discrepancy.max, discrepancy.pairs
    );
    println!(
        "expected average degree: {:.3} -> {:.3}",
        graph.expected_average_degree(),
        result.graph.expected_average_degree()
    );
    println!("done: the published graph is (75, 0.01)-obfuscated.");
}
