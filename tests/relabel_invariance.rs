//! Relabeling invariance: privacy and utility quantities must depend only
//! on graph structure, never on node numbering. A permuted copy of a graph
//! must produce permuted-identical analyses.

use chameleon::core::PrivacyProfile;
use chameleon::prelude::*;

/// Builds a relabeled copy of `g` under `perm` (new_id = perm[old_id]).
fn relabel(g: &UncertainGraph, perm: &[u32]) -> UncertainGraph {
    let mut out = UncertainGraph::with_nodes(g.num_nodes());
    for e in g.edges() {
        out.add_edge(perm[e.u as usize], perm[e.v as usize], e.p)
            .unwrap();
    }
    out
}

/// A fixed pseudo-random permutation of 0..n.
fn permutation(n: usize, seed: u64) -> Vec<u32> {
    use rand::seq::SliceRandom;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = SeedSequence::new(seed).rng("perm");
    perm.shuffle(&mut rng);
    perm
}

#[test]
fn anonymity_check_is_relabel_invariant() {
    let g = brightkite_like(250, 3);
    let perm = permutation(g.num_nodes(), 1);
    let h = relabel(&g, &perm);
    let kg = AdversaryKnowledge::expected_degrees(&g);
    let kh = AdversaryKnowledge::expected_degrees(&h);
    for k in [5usize, 20, 60] {
        let rg = anonymity_check(&g, &kg, k);
        let rh = anonymity_check(&h, &kh, k);
        assert_eq!(rg.unobfuscated.len(), rh.unobfuscated.len(), "k={k}");
        assert_eq!(rg.eps_hat, rh.eps_hat);
        // The same vertices (under the permutation) are exposed.
        let mut mapped: Vec<u32> = rg.unobfuscated.iter().map(|&v| perm[v as usize]).collect();
        mapped.sort_unstable();
        assert_eq!(mapped, rh.unobfuscated);
    }
}

#[test]
fn privacy_profile_is_relabel_invariant() {
    let g = dblp_like(200, 5);
    let perm = permutation(g.num_nodes(), 2);
    let h = relabel(&g, &perm);
    let pg = PrivacyProfile::compute(&g, &AdversaryKnowledge::expected_degrees(&g));
    let ph = PrivacyProfile::compute(&h, &AdversaryKnowledge::expected_degrees(&h));
    for (v, &hv) in pg.entropy_bits.iter().enumerate() {
        let mapped = perm[v] as usize;
        assert!(
            (hv - ph.entropy_bits[mapped]).abs() < 1e-9,
            "vertex {v} entropy {hv} vs mapped {}",
            ph.entropy_bits[mapped]
        );
    }
    for eps in [0.0, 0.02, 0.1] {
        assert_eq!(pg.max_k_at(eps), ph.max_k_at(eps));
    }
}

#[test]
fn uniqueness_scores_are_relabel_invariant() {
    use chameleon::core::uniqueness_scores;
    let g = ppi_like(150, 7);
    let perm = permutation(g.num_nodes(), 3);
    let h = relabel(&g, &perm);
    let ug = uniqueness_scores(&g);
    let uh = uniqueness_scores(&h);
    for (v, &s) in ug.iter().enumerate() {
        assert!(
            (s - uh[perm[v] as usize]).abs() < 1e-9,
            "vertex {v}: {s} vs {}",
            uh[perm[v] as usize]
        );
    }
}
