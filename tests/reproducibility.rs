//! Determinism guarantees across the whole pipeline: identical seeds must
//! yield bit-identical datasets, anonymizations and measurements — the
//! property every experiment table in EXPERIMENTS.md relies on.

use chameleon::prelude::*;

fn graphs_identical(a: &UncertainGraph, b: &UncertainGraph) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_edges() == b.num_edges()
        && a.edges()
            .iter()
            .zip(b.edges())
            .all(|(x, y)| (x.u, x.v) == (y.u, y.v) && (x.p - y.p).abs() < 1e-15)
}

#[test]
fn datasets_are_deterministic() {
    assert!(graphs_identical(&dblp_like(200, 5), &dblp_like(200, 5)));
    assert!(graphs_identical(
        &brightkite_like(200, 5),
        &brightkite_like(200, 5)
    ));
    assert!(graphs_identical(&ppi_like(150, 5), &ppi_like(150, 5)));
    assert!(!graphs_identical(&dblp_like(200, 5), &dblp_like(200, 6)));
}

#[test]
fn anonymization_is_deterministic_per_seed() {
    let g = brightkite_like(180, 1);
    let cfg = ChameleonConfig::builder()
        .k(15)
        .epsilon(0.05)
        .trials(2)
        .num_world_samples(100)
        .sigma_tolerance(0.2)
        .build();
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let a = Chameleon::new(cfg.clone())
            .anonymize(&g, method, 33)
            .unwrap();
        let b = Chameleon::new(cfg.clone())
            .anonymize(&g, method, 33)
            .unwrap();
        assert!(
            graphs_identical(&a.graph, &b.graph),
            "{method} not deterministic"
        );
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.eps_hat, b.eps_hat);
        assert_eq!(a.genobf_calls, b.genobf_calls);
    }
}

#[test]
fn repan_is_deterministic_per_seed() {
    let g = dblp_like(180, 2);
    let cfg = ChameleonConfig::builder()
        .k(8)
        .epsilon(0.06)
        .trials(2)
        .num_world_samples(100)
        .sigma_tolerance(0.2)
        .build();
    let a = RepAn::new(cfg.clone()).anonymize(&g, 4).unwrap();
    let b = RepAn::new(cfg).anonymize(&g, 4).unwrap();
    assert!(graphs_identical(&a.representative, &b.representative));
    assert!(graphs_identical(&a.graph, &b.graph));
}

#[test]
fn measurements_are_deterministic() {
    let g = ppi_like(150, 9);
    let mut h = g.clone();
    h.set_prob(0, 0.99).unwrap();
    let run = || {
        let seq = SeedSequence::new(77);
        let pairs = sample_distinct_pairs(g.num_nodes(), 200, &mut seq.rng("p"));
        let a = WorldEnsemble::sample(&g, 150, &mut seq.rng("a"));
        let b = WorldEnsemble::sample(&h, 150, &mut seq.rng("b"));
        avg_reliability_discrepancy(&a, &b, &pairs)
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.avg, r2.avg);
    assert_eq!(r1.max, r2.max);
}

#[test]
fn parallel_execution_matches_serial_at_every_site() {
    use chameleon::core::relevance::{
        edge_reliability_relevance_alg2_threads, edge_reliability_relevance_threads,
    };
    use chameleon::core::{anonymity_check_threads, anonymity_check_tolerant_threads};

    let g = brightkite_like(220, 3);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

    // Site 1: chunk-seeded world sampling and per-world analysis.
    let e1 = WorldEnsemble::sample_seeded(&g, 137, 99, 1);
    let e8 = WorldEnsemble::sample_seeded(&g, 137, 99, 8);
    assert_eq!(e1.matrix(), e8.matrix());
    for w in 0..e1.len() {
        assert_eq!(e1.labels(w), e8.labels(w));
        assert_eq!(e1.component_sizes(w), e8.component_sizes(w));
    }
    assert_eq!(e1.connected_pairs_all(), e8.connected_pairs_all());

    // Site 2: ERR estimators fold per-chunk partials in chunk order.
    assert_eq!(
        bits(&edge_reliability_relevance_threads(&g, &e1, 1)),
        bits(&edge_reliability_relevance_threads(&g, &e1, 8))
    );
    assert_eq!(
        bits(&edge_reliability_relevance_alg2_threads(&g, &e1, 1)),
        bits(&edge_reliability_relevance_alg2_threads(&g, &e1, 8))
    );

    // Site 3: per-vertex degree-pmf construction in both anonymity checks.
    let knowledge = AdversaryKnowledge::expected_degrees(&g);
    let c1 = anonymity_check_threads(&g, &knowledge, 12, 1);
    let c8 = anonymity_check_threads(&g, &knowledge, 12, 8);
    assert_eq!(c1.eps_hat.to_bits(), c8.eps_hat.to_bits());
    assert_eq!(c1.unobfuscated, c8.unobfuscated);
    let t1 = anonymity_check_tolerant_threads(&g, &knowledge, 12, 1, 1);
    let t8 = anonymity_check_tolerant_threads(&g, &knowledge, 12, 1, 8);
    assert_eq!(t1.eps_hat.to_bits(), t8.eps_hat.to_bits());
    assert_eq!(t1.unobfuscated, t8.unobfuscated);
}

#[test]
fn full_anonymization_is_thread_count_invariant() {
    // Site 4 (parallel GenObf trials) plus everything upstream: the whole
    // pipeline must publish the same graph at every thread count.
    let g = brightkite_like(160, 4);
    let run = |threads: usize| {
        let cfg = ChameleonConfig::builder()
            .k(12)
            .epsilon(0.05)
            .trials(3)
            .num_world_samples(120)
            .sigma_tolerance(0.2)
            .num_threads(threads)
            .build();
        Chameleon::new(cfg).anonymize(&g, Method::Rsme, 7).unwrap()
    };
    let serial = run(1);
    let parallel = run(8);
    assert!(graphs_identical(&serial.graph, &parallel.graph));
    assert_eq!(serial.sigma.to_bits(), parallel.sigma.to_bits());
    assert_eq!(serial.eps_hat.to_bits(), parallel.eps_hat.to_bits());
    assert_eq!(serial.genobf_calls, parallel.genobf_calls);
}

#[test]
fn seed_sequence_isolates_components() {
    // Adding a new labelled consumer must not perturb existing streams —
    // the property that keeps experiment extensions from invalidating
    // recorded results.
    let seq = SeedSequence::new(123);
    let before = seq.derive("world-sampling");
    let _ = seq.derive("some-new-component");
    assert_eq!(before, seq.derive("world-sampling"));
}
