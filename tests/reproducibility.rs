//! Determinism guarantees across the whole pipeline: identical seeds must
//! yield bit-identical datasets, anonymizations and measurements — the
//! property every experiment table in EXPERIMENTS.md relies on.

use chameleon::prelude::*;

fn graphs_identical(a: &UncertainGraph, b: &UncertainGraph) -> bool {
    a.num_nodes() == b.num_nodes()
        && a.num_edges() == b.num_edges()
        && a.edges()
            .iter()
            .zip(b.edges())
            .all(|(x, y)| (x.u, x.v) == (y.u, y.v) && (x.p - y.p).abs() < 1e-15)
}

#[test]
fn datasets_are_deterministic() {
    assert!(graphs_identical(&dblp_like(200, 5), &dblp_like(200, 5)));
    assert!(graphs_identical(
        &brightkite_like(200, 5),
        &brightkite_like(200, 5)
    ));
    assert!(graphs_identical(&ppi_like(150, 5), &ppi_like(150, 5)));
    assert!(!graphs_identical(&dblp_like(200, 5), &dblp_like(200, 6)));
}

#[test]
fn anonymization_is_deterministic_per_seed() {
    let g = brightkite_like(180, 1);
    let cfg = ChameleonConfig::builder()
        .k(15)
        .epsilon(0.05)
        .trials(2)
        .num_world_samples(100)
        .sigma_tolerance(0.2)
        .build();
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let a = Chameleon::new(cfg.clone()).anonymize(&g, method, 33).unwrap();
        let b = Chameleon::new(cfg.clone()).anonymize(&g, method, 33).unwrap();
        assert!(graphs_identical(&a.graph, &b.graph), "{method} not deterministic");
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.eps_hat, b.eps_hat);
        assert_eq!(a.genobf_calls, b.genobf_calls);
    }
}

#[test]
fn repan_is_deterministic_per_seed() {
    let g = dblp_like(180, 2);
    let cfg = ChameleonConfig::builder()
        .k(8)
        .epsilon(0.06)
        .trials(2)
        .num_world_samples(100)
        .sigma_tolerance(0.2)
        .build();
    let a = RepAn::new(cfg.clone()).anonymize(&g, 4).unwrap();
    let b = RepAn::new(cfg).anonymize(&g, 4).unwrap();
    assert!(graphs_identical(&a.representative, &b.representative));
    assert!(graphs_identical(&a.graph, &b.graph));
}

#[test]
fn measurements_are_deterministic() {
    let g = ppi_like(150, 9);
    let mut h = g.clone();
    h.set_prob(0, 0.99).unwrap();
    let run = || {
        let seq = SeedSequence::new(77);
        let pairs = sample_distinct_pairs(g.num_nodes(), 200, &mut seq.rng("p"));
        let a = WorldEnsemble::sample(&g, 150, &mut seq.rng("a"));
        let b = WorldEnsemble::sample(&h, 150, &mut seq.rng("b"));
        avg_reliability_discrepancy(&a, &b, &pairs)
    };
    let r1 = run();
    let r2 = run();
    assert_eq!(r1.avg, r2.avg);
    assert_eq!(r1.max, r2.max);
}

#[test]
fn seed_sequence_isolates_components() {
    // Adding a new labelled consumer must not perturb existing streams —
    // the property that keeps experiment extensions from invalidating
    // recorded results.
    let seq = SeedSequence::new(123);
    let before = seq.derive("world-sampling");
    let _ = seq.derive("some-new-component");
    assert_eq!(before, seq.derive("world-sampling"));
}
