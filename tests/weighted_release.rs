//! Integration: the weighted+probabilistic data model survives the
//! anonymization pipeline (paper §II's road-network motivation) — weights
//! ride along unchanged, probabilities are obfuscated, expected weighted
//! distances stay close.

use chameleon::prelude::*;
use chameleon::ugraph::weighted::{expected_weighted_distances, WeightedUncertainGraph};

fn grid(side: u32, seed: u64) -> (UncertainGraph, Vec<f64>) {
    let n = (side * side) as usize;
    let mut g = UncertainGraph::with_nodes(n);
    let mut weights = Vec::new();
    let seq = SeedSequence::new(seed);
    let mut rng = seq.rng("grid");
    use rand::Rng;
    let idx = |r: u32, c: u32| r * side + c;
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                g.add_edge(idx(r, c), idx(r, c + 1), 0.5 + 0.45 * rng.gen::<f64>())
                    .unwrap();
                weights.push(1.0 + rng.gen::<f64>());
            }
            if r + 1 < side {
                g.add_edge(idx(r, c), idx(r + 1, c), 0.5 + 0.45 * rng.gen::<f64>())
                    .unwrap();
                weights.push(1.0 + rng.gen::<f64>());
            }
        }
    }
    (g, weights)
}

#[test]
fn weighted_pipeline_preserves_travel_times() {
    let (g, weights) = grid(8, 3);
    let roads = WeightedUncertainGraph::new(g.clone(), weights);
    let cfg = ChameleonConfig::builder()
        .k(8)
        .epsilon(0.05)
        .trials(2)
        .num_world_samples(80)
        .sigma_tolerance(0.2)
        .build();
    let release = Chameleon::new(cfg)
        .anonymize(&g, Method::Rsme, 5)
        .expect("grid anonymizes");

    // Weights transfer: shared prefix identical, injected edges defaulted.
    let published = roads.with_published(release.graph.clone(), 2.0);
    assert_eq!(published.weights().len(), release.graph.num_edges());
    for e in 0..g.num_edges() as u32 {
        assert_eq!(published.weight(e), roads.weight(e));
    }

    // Expected travel times stay in the same ballpark.
    let seq = SeedSequence::new(9);
    let sources = [0u32, 27, 63];
    let worlds_a = WorldSampler::sample_many(&g, 60, &mut seq.rng("a"));
    let worlds_b = WorldSampler::sample_many(&release.graph, 60, &mut seq.rng("b"));
    let before = expected_weighted_distances(&roads, &worlds_a, &sources);
    let after = expected_weighted_distances(&published, &worlds_b, &sources);
    assert!(before.mean_distance > 0.0);
    let rel = (after.mean_distance - before.mean_distance).abs() / before.mean_distance;
    assert!(rel < 0.5, "travel time drifted {rel:.2}x");
}
