//! Observability must never perturb results: the pipeline's output has to
//! be bit-identical whether metric recording is on or off, and the
//! recorded metrics themselves must be deterministic in their non-timing
//! fields for a fixed seed.
//!
//! Everything lives in one `#[test]` because the runtime kill-switch is
//! process-global — concurrent tests must not observe the disabled window.

use chameleon::prelude::*;

fn edges_bits(g: &UncertainGraph) -> Vec<(u32, u32, u64)> {
    g.edges()
        .iter()
        .map(|e| (e.u, e.v, e.p.to_bits()))
        .collect()
}

#[test]
fn recording_on_or_off_yields_bit_identical_output() {
    let g = brightkite_like(150, 3);
    let cfg = ChameleonConfig::builder()
        .k(10)
        .epsilon(0.05)
        .trials(2)
        .num_world_samples(120)
        .sigma_tolerance(0.2)
        .num_threads(2)
        .build();
    let run = || {
        Chameleon::new(cfg.clone())
            .anonymize(&g, Method::Rsme, 77)
            .unwrap()
    };

    let was_on = chameleon::obs::set_enabled(true);
    let with_obs = run();
    let counters_first = chameleon::obs::snapshot();

    chameleon::obs::set_enabled(false);
    let without_obs = run();

    chameleon::obs::set_enabled(true);
    let with_obs_again = run();
    let counters_second = chameleon::obs::snapshot();
    chameleon::obs::set_enabled(was_on);

    // 1. Toggling recording changes nothing about the pipeline output.
    assert_eq!(edges_bits(&with_obs.graph), edges_bits(&without_obs.graph));
    assert_eq!(with_obs.sigma.to_bits(), without_obs.sigma.to_bits());
    assert_eq!(with_obs.eps_hat.to_bits(), without_obs.eps_hat.to_bits());
    assert_eq!(with_obs.genobf_calls, without_obs.genobf_calls);

    // 2. Same seed, recording on: the run repeats exactly.
    assert_eq!(
        edges_bits(&with_obs.graph),
        edges_bits(&with_obs_again.graph)
    );

    // 3. The disabled run contributed nothing; the two enabled runs
    //    contributed identical counter deltas (counters are functions of
    //    the seeded work, not of timing or thread interleaving).
    if chameleon::obs::is_enabled() {
        for name in [
            "genobf.trials",
            "genobf.edges_perturbed",
            "anonymity.checks",
            "ensemble.worlds_sampled",
            "relevance.worlds_scanned",
        ] {
            let first = counters_first.counter(name);
            let second = counters_second.counter(name);
            assert!(first > 0, "{name} never recorded");
            assert_eq!(
                second,
                2 * first,
                "{name}: delta of the second enabled run differs from the first \
                 (or the disabled run recorded)"
            );
        }
    }
}
