//! Integration tests pinning the paper's qualitative claims at test scale.
//! These are the "shape" assertions behind the figures: they use small
//! graphs and generous margins so they are robust to Monte-Carlo noise
//! while still failing if an algorithmic regression flips a conclusion.

use chameleon::baseline::{extract_representative, RepresentativeStrategy};
use chameleon::prelude::*;

fn reliability_error(original: &UncertainGraph, published: &UncertainGraph, seed: u64) -> f64 {
    let seq = SeedSequence::new(seed);
    let pairs = sample_distinct_pairs(original.num_nodes(), 600, &mut seq.rng("pairs"));
    let uniforms = chameleon::reliability::crn_uniform_matrix(
        400,
        original.num_edges().max(published.num_edges()),
        &mut seq.rng("crn"),
    );
    let a = WorldEnsemble::from_uniform_matrix(original, &uniforms);
    let b = WorldEnsemble::from_uniform_matrix(published, &uniforms);
    avg_reliability_discrepancy(&a, &b, &pairs).avg
}

fn cfg(k: usize, eps: f64) -> ChameleonConfig {
    ChameleonConfig::builder()
        .k(k)
        .epsilon(eps)
        .trials(3)
        .num_world_samples(150)
        .sigma_tolerance(0.1)
        .build()
}

/// Paper Fig. 4 / Fig. 8 headline: Rep-An loses far more reliability than
/// Chameleon at equal privacy.
#[test]
fn repan_loses_more_reliability_than_chameleon() {
    let g = brightkite_like(300, 13);
    let k = 20;
    let eps = 0.05;
    let chameleon = Chameleon::new(cfg(k, eps))
        .anonymize(&g, Method::Rsme, 3)
        .expect("rsme succeeds");
    let repan = RepAn::new(cfg(k, eps))
        .anonymize(&g, 3)
        .expect("rep-an succeeds");
    let err_chameleon = reliability_error(&g, &chameleon.graph, 1);
    let err_repan = reliability_error(&g, &repan.graph, 1);
    assert!(
        err_repan > 2.0 * err_chameleon,
        "paper claim violated: Rep-An {err_repan} should far exceed Chameleon {err_chameleon}"
    );
}

/// Paper §IV-A: the representative-extraction step alone already injects
/// large reliability error (before any obfuscation noise).
#[test]
fn representative_extraction_alone_destroys_reliability() {
    let g = brightkite_like(300, 17);
    let rep = extract_representative(&g, RepresentativeStrategy::ExpectedDegree);
    let rep_err = reliability_error(&g, &rep, 2);
    // Chameleon at the same privacy level stays well below it.
    let chameleon = Chameleon::new(cfg(20, 0.05))
        .anonymize(&g, Method::Rsme, 5)
        .unwrap();
    let cham_err = reliability_error(&g, &chameleon.graph, 2);
    assert!(
        rep_err > 2.0 * cham_err,
        "extraction error {rep_err} should dominate chameleon error {cham_err}"
    );
}

/// Paper Table II / §VI summary: reliability-sensitive selection (RS,
/// RSME) preserves reliability at least as well as uniqueness-only
/// selection (ME) under the *same* perturbation rule, on a graph with
/// clear bridge structure.
#[test]
fn reliability_sensitive_selection_protects_bridges() {
    // Graph engineered with critical bridges: two dense clusters + one
    // probabilistic bridge; plus enough background nodes to obfuscate.
    let mut g = brightkite_like(240, 23);
    // Carve a dumbbell into nodes 0..16.
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            if !g.has_edge(u, v) {
                g.add_edge(u, v, 0.85).unwrap();
            }
        }
    }
    for u in 8..16u32 {
        for v in (u + 1)..16 {
            if !g.has_edge(u, v) {
                g.add_edge(u, v, 0.85).unwrap();
            }
        }
    }
    if !g.has_edge(7, 8) {
        g.add_edge(7, 8, 0.5).unwrap();
    }
    let rsme = Chameleon::new(cfg(15, 0.06))
        .anonymize(&g, Method::Rsme, 11)
        .expect("rsme succeeds");
    let me = Chameleon::new(cfg(15, 0.06))
        .anonymize(&g, Method::Me, 11)
        .expect("me succeeds");
    let err_rsme = reliability_error(&g, &rsme.graph, 3);
    let err_me = reliability_error(&g, &me.graph, 3);
    // Generous margin: RSME must not be substantially worse.
    assert!(
        err_rsme <= 1.5 * err_me + 0.02,
        "reliability-sensitive selection should not lose: RSME {err_rsme} vs ME {err_me}"
    );
}

/// The privacy/utility trade-off is monotone where it matters: achieving a
/// (much) stronger k costs at least as much noise.
#[test]
fn stronger_privacy_costs_no_less_noise() {
    let g = dblp_like(250, 31);
    let weak = Chameleon::new(cfg(5, 0.05))
        .anonymize(&g, Method::Rsme, 9)
        .unwrap();
    let strong = Chameleon::new(cfg(30, 0.05))
        .anonymize(&g, Method::Rsme, 9)
        .unwrap();
    assert!(
        strong.sigma >= weak.sigma,
        "k=30 sigma {} should be at least k=5 sigma {}",
        strong.sigma,
        weak.sigma
    );
}

/// Both Chameleon and Rep-An really do enforce the syntactic guarantee —
/// verified with an independently-constructed adversary.
#[test]
fn all_methods_enforce_k_obfuscation() {
    let g = ppi_like(220, 37);
    let k = 12;
    let eps = 0.05;
    let knowledge = AdversaryKnowledge::expected_degrees(&g);
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let out = Chameleon::new(cfg(k, eps))
            .anonymize(&g, method, 21)
            .unwrap();
        let verify = anonymity_check(&out.graph, &knowledge, k);
        assert!(verify.eps_hat <= eps, "{method}: {}", verify.eps_hat);
    }
    let repan = RepAn::new(cfg(k, eps)).anonymize(&g, 21).unwrap();
    let rep_knowledge = AdversaryKnowledge::structural_degrees(&repan.representative);
    let verify = anonymity_check(&repan.graph, &rep_knowledge, k);
    assert!(verify.eps_hat <= eps);
}
