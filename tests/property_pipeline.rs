//! Property-based whole-pipeline tests: for randomly generated small
//! uncertain graphs, anonymization either fails cleanly or returns a graph
//! that (1) verifiably satisfies the requested (k, ε)-obfuscation,
//! (2) preserves the node set and original edge identities, and
//! (3) carries only valid probabilities.

use chameleon::prelude::*;
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = UncertainGraph> {
    (
        20usize..50,
        proptest::collection::vec((0u32..50, 0u32..50, 0.05f64..=0.95), 20..90),
    )
        .prop_map(|(n, edges)| {
            let mut builder = GraphBuilder::new(n);
            for (u, v, p) in edges {
                let _ = builder.add_edge(u % n as u32, v % n as u32, p);
            }
            builder.build()
        })
        .prop_filter("need at least one edge", |g| g.num_edges() > 0)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs a full anonymization; keep it lean
        .. ProptestConfig::default()
    })]

    #[test]
    fn anonymization_invariants(graph in arbitrary_graph(), seed in 0u64..1000) {
        let k = 4usize;
        let epsilon = 0.1f64;
        let cfg = ChameleonConfig::builder()
            .k(k)
            .epsilon(epsilon)
            .trials(2)
            .num_world_samples(60)
            .sigma_tolerance(0.25)
            .max_doublings(3)
            .build();
        let knowledge = AdversaryKnowledge::expected_degrees(&graph);
        match Chameleon::new(cfg).anonymize(&graph, Method::Rsme, seed) {
            Ok(result) => {
                // (1) the guarantee holds under an independent check
                let verify = anonymity_check(&result.graph, &knowledge, k);
                prop_assert!(
                    verify.eps_hat <= epsilon + 1e-12,
                    "claimed eps-hat {} but independent check found {}",
                    result.eps_hat,
                    verify.eps_hat
                );
                // (2) node set and original edge identity preserved
                prop_assert_eq!(result.graph.num_nodes(), graph.num_nodes());
                prop_assert!(result.graph.num_edges() >= graph.num_edges());
                for (i, e) in graph.edges().iter().enumerate() {
                    let out = result.graph.edge(i as u32);
                    prop_assert_eq!((out.u, out.v), (e.u, e.v));
                }
                // (3) probabilities valid
                for e in result.graph.edges() {
                    prop_assert!(e.p.is_finite() && (0.0..=1.0).contains(&e.p));
                }
                // sigma is meaningful
                prop_assert!(result.sigma >= 0.0 && result.sigma.is_finite());
            }
            Err(ChameleonError::NoObfuscationFound { best_eps_hat, .. }) => {
                // Failure must be "honest": the graph really is hard —
                // the raw graph must not already satisfy the target.
                let raw = anonymity_check(&graph, &knowledge, k);
                prop_assert!(
                    raw.eps_hat > epsilon,
                    "engine failed (best {}) although the raw graph passes ({})",
                    best_eps_hat,
                    raw.eps_hat
                );
            }
            Err(other) => {
                return Err(TestCaseError::fail(format!("unexpected error: {other}")));
            }
        }
    }

    #[test]
    fn serialization_roundtrip_of_releases(graph in arbitrary_graph(), seed in 0u64..50) {
        let cfg = ChameleonConfig::builder()
            .k(3)
            .epsilon(0.15)
            .trials(1)
            .num_world_samples(40)
            .sigma_tolerance(0.5)
            .max_doublings(2)
            .build();
        if let Ok(result) = Chameleon::new(cfg).anonymize(&graph, Method::Me, seed) {
            let mut buf = Vec::new();
            chameleon::ugraph::io::write_text(&result.graph, &mut buf).unwrap();
            let loaded = chameleon::ugraph::io::read_text(
                buf.as_slice(),
                chameleon::ugraph::builder::DedupPolicy::Reject,
            )
            .unwrap();
            prop_assert_eq!(loaded.num_nodes(), result.graph.num_nodes());
            prop_assert_eq!(loaded.num_edges(), result.graph.num_edges());
        }
    }
}
