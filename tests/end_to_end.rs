//! End-to-end integration: dataset generation → anonymization (all
//! methods) → independent privacy verification → release round-trip.

use chameleon::prelude::*;
use chameleon::ugraph::builder::DedupPolicy;
use chameleon::ugraph::io;

fn test_cfg(k: usize, eps: f64) -> ChameleonConfig {
    ChameleonConfig::builder()
        .k(k)
        .epsilon(eps)
        .trials(3)
        .num_world_samples(150)
        .sigma_tolerance(0.1)
        .build()
}

#[test]
fn chameleon_pipeline_all_methods() {
    let graph = brightkite_like(250, 11);
    let knowledge = AdversaryKnowledge::expected_degrees(&graph);
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let result = Chameleon::new(test_cfg(25, 0.04))
            .anonymize(&graph, method, 5)
            .unwrap_or_else(|e| panic!("{method} failed: {e}"));
        // The engine's claim must be verifiable independently.
        let verify = anonymity_check(&result.graph, &knowledge, 25);
        assert!(
            verify.eps_hat <= 0.04,
            "{method}: independent check eps-hat {} exceeds tolerance",
            verify.eps_hat
        );
        assert_eq!(verify.eps_hat, result.eps_hat);
        // Node set preserved, edge set extended only.
        assert_eq!(result.graph.num_nodes(), graph.num_nodes());
        assert!(result.graph.num_edges() >= graph.num_edges());
        for (i, e) in graph.edges().iter().enumerate() {
            let out = result.graph.edge(i as u32);
            assert_eq!((out.u, out.v), (e.u, e.v), "edge identity must survive");
        }
    }
}

#[test]
fn repan_pipeline_and_release_roundtrip() {
    let graph = dblp_like(220, 3);
    let repan = RepAn::new(test_cfg(10, 0.06));
    let result = repan
        .anonymize(&graph, 9)
        .expect("rep-an should succeed at k=10");
    assert!(result.eps_hat <= 0.06);
    // Published graph survives serialization.
    let mut buf = Vec::new();
    io::write_text(&result.graph, &mut buf).unwrap();
    let loaded = io::read_text(buf.as_slice(), DedupPolicy::Reject).unwrap();
    assert_eq!(loaded.num_nodes(), result.graph.num_nodes());
    assert_eq!(loaded.num_edges(), result.graph.num_edges());
    for (a, b) in loaded.edges().iter().zip(result.graph.edges()) {
        assert!((a.p - b.p).abs() < 1e-12);
    }
}

#[test]
fn utility_is_measurable_and_bounded() {
    let graph = ppi_like(200, 21);
    let result = Chameleon::new(test_cfg(15, 0.05))
        .anonymize(&graph, Method::Rsme, 77)
        .expect("rsme should succeed");
    let seq = SeedSequence::new(2);
    let pairs = sample_distinct_pairs(graph.num_nodes(), 300, &mut seq.rng("p"));
    let a = WorldEnsemble::sample(&graph, 200, &mut seq.rng("a"));
    let b = WorldEnsemble::sample(&result.graph, 200, &mut seq.rng("b"));
    let rep = avg_reliability_discrepancy(&a, &b, &pairs);
    assert!(rep.avg >= 0.0 && rep.avg <= 1.0);
    assert!(rep.max <= 1.0);
    // Average degree should stay within a factor of 3 (sanity, not paper).
    let d0 = graph.expected_average_degree();
    let d1 = result.graph.expected_average_degree();
    assert!(
        d1 < 3.0 * d0 && d1 > d0 / 3.0,
        "degree blew up: {d0} -> {d1}"
    );
}

#[test]
fn impossible_privacy_fails_cleanly_end_to_end() {
    let graph = brightkite_like(60, 4);
    // k > n can never be achieved.
    let cfg = ChameleonConfig::builder()
        .k(100)
        .epsilon(0.01)
        .trials(1)
        .num_world_samples(50)
        .max_doublings(2)
        .sigma_tolerance(0.2)
        .build();
    let err = Chameleon::new(cfg)
        .anonymize(&graph, Method::Me, 0)
        .unwrap_err();
    assert!(matches!(err, ChameleonError::NoObfuscationFound { .. }));
}

#[test]
fn published_graph_probabilities_are_valid() {
    let graph = dblp_like(150, 8);
    for method in [Method::Rsme, Method::Rs, Method::Me] {
        let result = Chameleon::new(test_cfg(8, 0.05))
            .anonymize(&graph, method, 1)
            .unwrap();
        for e in result.graph.edges() {
            assert!(
                e.p.is_finite() && (0.0..=1.0).contains(&e.p),
                "{method}: invalid probability {}",
                e.p
            );
        }
    }
}
