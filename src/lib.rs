//! Chameleon — reliability-preserving anonymization of uncertain graphs.
//!
//! This umbrella crate re-exports the workspace crates of the reproduction
//! of *"Sharing Uncertain Graphs Using Syntactic Private Graph Models"*
//! (Xiao, Eltabakh, Kong — ICDE 2018) under one roof, plus a [`prelude`]
//! for examples and downstream users.
//!
//! * [`ugraph`] — uncertain graph structures, possible-world sampling,
//!   generators and I/O.
//! * [`stats`] — the probability toolkit (truncated normals,
//!   Poisson–binomial degree laws, entropy, KDE).
//! * [`reliability`] — Monte-Carlo reliability estimation, reliability
//!   discrepancy, and structural metrics.
//! * [`core`] — the Chameleon anonymizer (uniqueness, reliability
//!   relevance, GenObf, the (k, ε)-obfuscation check).
//! * [`baseline`] — the Rep-An benchmark pipeline.
//! * [`datasets`] — synthetic DBLP/BRIGHTKITE/PPI stand-ins.
//! * [`mining`] — downstream mining tasks (reliable kNN, reliable
//!   clusters, influence spread) for task-level utility evaluation.
//! * [`dp`] — the differentially-private dK-1 publication baseline from
//!   the paper's related-work comparison.
//! * [`obs`] — lightweight observability: timing spans, counters and
//!   log-scaled histograms over the Monte-Carlo hot paths.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use chameleon_baseline as baseline;
pub use chameleon_core as core;
pub use chameleon_datasets as datasets;
pub use chameleon_dp as dp;
pub use chameleon_mining as mining;
pub use chameleon_obs as obs;
pub use chameleon_reliability as reliability;
pub use chameleon_stats as stats;
pub use chameleon_ugraph as ugraph;

/// Everything a typical caller needs.
pub mod prelude {
    pub use chameleon_baseline::{RepAn, RepAnResult, RepresentativeStrategy};
    pub use chameleon_core::{
        anonymity_check, AdversaryKnowledge, AnonymityReport, Chameleon, ChameleonConfig,
        ChameleonError, Method, ObfuscationResult,
    };
    pub use chameleon_datasets::{brightkite_like, dblp_like, ppi_like, DatasetKind};
    pub use chameleon_mining::{
        greedy_seed_selection, influence_spread, reliability_knn, reliable_clusters,
    };
    pub use chameleon_reliability::{
        avg_reliability_discrepancy, sample_distinct_pairs, WorldEnsemble,
    };
    pub use chameleon_stats::SeedSequence;
    pub use chameleon_ugraph::{GraphBuilder, UncertainGraph, World, WorldSampler};
}
