//! Offline vendored stand-in for the parts of `criterion` 0.5 this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! compiles this drop-in instead of the real crate. It is a plain
//! wall-clock harness: each benchmark warms up briefly, then runs batches
//! of iterations until a time budget is spent, and reports the mean and
//! min per-iteration time. There are no statistical models, plots, or
//! saved baselines — the numbers are honest but simple.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::new`] / [`BenchmarkId::from_parameter`],
//! [`Bencher::iter`], [`black_box`], and the plain
//! `criterion_group!(name, fn, ...)` / `criterion_main!(name, ...)` forms.
//!
//! CLI behavior matches what cargo expects of a `harness = false` bench:
//! `--test` (passed by `cargo test --benches`) runs every benchmark for a
//! single iteration as a smoke test, and a free argument acts as a
//! substring filter on benchmark names, like `cargo bench -- <filter>`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark, optionally parameterized
/// (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id carrying only a parameter; the group name provides context.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    mode: &'a RunMode,
    report: Option<Measurement>,
}

/// How the harness was invoked.
#[derive(Debug, Clone)]
enum RunMode {
    /// `cargo test --benches`: one iteration per benchmark, no timing.
    Smoke,
    /// `cargo bench`: measure for roughly this long per benchmark.
    Measure { budget: Duration, min_samples: u64 },
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match *self.mode {
            RunMode::Smoke => {
                black_box(routine());
            }
            RunMode::Measure {
                budget,
                min_samples,
            } => {
                // Warm-up: a few unrecorded iterations (caches, allocator).
                let warmup_start = Instant::now();
                let mut warmed = 0u64;
                while warmed < 3 || (warmup_start.elapsed() < budget / 10 && warmed < min_samples) {
                    black_box(routine());
                    warmed += 1;
                }

                let mut total = Duration::ZERO;
                let mut min = Duration::MAX;
                let mut iters = 0u64;
                let started = Instant::now();
                while iters < min_samples || started.elapsed() < budget {
                    let t0 = Instant::now();
                    black_box(routine());
                    let dt = t0.elapsed();
                    total += dt;
                    if dt < min {
                        min = dt;
                    }
                    iters += 1;
                    // Hard cap so sub-microsecond bodies don't spin for
                    // millions of iterations inside one budget window.
                    if iters >= 1_000_000 {
                        break;
                    }
                }
                self.report = Some(Measurement {
                    mean: total / u32::try_from(iters).unwrap_or(u32::MAX).max(1),
                    min,
                    iters,
                });
            }
        }
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    mode: RunMode,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut smoke = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                // Flags cargo/criterion conventionally pass; ignored here.
                "--bench" | "--noplot" | "--quiet" | "-q" | "--exact" | "--nocapture" => {}
                other => {
                    if !other.starts_with('-') && filter.is_none() {
                        filter = Some(other.to_string());
                    }
                }
            }
        }
        let mode = if smoke {
            RunMode::Smoke
        } else {
            RunMode::Measure {
                budget: Duration::from_millis(500),
                min_samples: 10,
            }
        };
        Self { filter, mode }
    }
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let name = id.into_name();
        self.run_one(&name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: &self.mode,
            report: None,
        };
        f(&mut bencher);
        match (&self.mode, bencher.report) {
            (RunMode::Smoke, _) => println!("{name}: ok (smoke test, 1 iteration)"),
            (_, Some(m)) => println!(
                "{name}: mean {:>12?}  min {:>12?}  ({} iterations)",
                m.mean, m.min, m.iters
            ),
            (_, None) => println!("{name}: no measurement (b.iter was never called)"),
        }
    }
}

/// A set of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by wall
    /// clock, so the value only raises the minimum iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if let RunMode::Measure { min_samples, .. } = &mut self.criterion.mode {
            *min_samples = (*min_samples).max(n as u64);
        }
        self
    }

    /// Runs one benchmark inside the group (`group/name`).
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        self.criterion.run_one(&full, f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op here; the real crate finalizes reports.)
    pub fn finish(self) {}
}

/// Declares a benchmark group runner: `criterion_group!(name, fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the bench binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).name, "f/42");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion {
            filter: None,
            mode: RunMode::Smoke,
        };
        let mut runs = 0;
        c.bench_function("counted", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("keep".to_string()),
            mode: RunMode::Smoke,
        };
        let mut kept = 0;
        let mut skipped = 0;
        c.bench_function("keep_this", |b| b.iter(|| kept += 1));
        c.bench_function("drop_this", |b| b.iter(|| skipped += 1));
        assert_eq!((kept, skipped), (1, 0));
    }

    #[test]
    fn measure_mode_reports_iterations() {
        let mode = RunMode::Measure {
            budget: Duration::from_millis(1),
            min_samples: 5,
        };
        let mut b = Bencher {
            mode: &mode,
            report: None,
        };
        b.iter(|| black_box(1 + 1));
        let m = b.report.expect("measurement recorded");
        assert!(m.iters >= 5);
        assert!(m.min <= m.mean);
    }

    #[test]
    fn group_names_prefix_benchmarks() {
        let mut c = Criterion {
            filter: Some("grp/inner".to_string()),
            mode: RunMode::Smoke,
        };
        let mut runs = 0;
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &n| {
            b.iter(|| runs += n)
        });
        g.finish();
        assert_eq!(runs, 1);
    }
}
