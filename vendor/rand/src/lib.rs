//! Offline vendored stand-in for the parts of `rand` 0.8 this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace compiles this drop-in module. It implements
//! the exact API subset the repo calls — [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`] (`from_seed`, `seed_from_u64`),
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`) — with
//! the same trait shapes (blanket `Rng` over `RngCore`, `&mut R`
//! forwarding) so call sites compile unchanged.
//!
//! [`rngs::StdRng`] here is **xoshiro256++** seeded through SplitMix64 (the
//! `rand_core` `seed_from_u64` scheme). It is a high-quality,
//! well-equidistributed generator, but it is *not* the ChaCha12 stream of
//! upstream `StdRng`: byte-for-byte outputs differ from real `rand`. Every
//! consumer in this repo treats `StdRng` as an opaque deterministic stream,
//! so only reproducibility (same seed ⇒ same stream) matters, and that is
//! guaranteed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The core trait every generator implements: a source of `u32`/`u64`
/// words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output (the
/// `Standard` distribution of real `rand`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High bit, matching rand's convention.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($ty:ty),*) => {$(
        impl StandardSample for $ty {
            #[allow(clippy::cast_possible_truncation)]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Uniform `u64` below `bound` (> 0) via Lemire's multiply-shift with
/// rejection — unbiased.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // zone: largest multiple of `bound` that fits in 2^64.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(bound);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_u64_below(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Whole-domain u64/i64/usize inclusive range.
                    return <$ty as StandardSample>::standard_sample(rng);
                }
                let offset = uniform_u64_below(rng, span as u64);
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$ty as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$ty as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
float_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed material for the generator.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` by expanding it through
    /// SplitMix64 (the `rand_core` scheme).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step (Vigna): the standard seed-expansion generator.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 stream of upstream `rand::rngs::StdRng` — see the
    /// crate docs — but an equally reproducible, statistically strong
    /// generator with a 256-bit state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[8 * i..8 * (i + 1)]);
                *word = u64::from_le_bytes(bytes);
            }
            // The all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (*rng).gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let x = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&x));
        }
        for _ in 0..1_000 {
            let x = rng.gen_range(-1.5f64..=2.5);
            assert!((-1.5..=2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_unbiased_low_values() {
        // A bound just above a power of two is where modulo bias would
        // show; Lemire rejection keeps every value near 1/6.
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 6];
        let n = 60_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for (v, &c) in counts.iter().enumerate() {
            let freq = f64::from(c) / f64::from(n);
            assert!((freq - 1.0 / 6.0).abs() < 0.01, "value {v}: freq {freq}");
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_700..5_300).contains(&trues), "trues={trues}");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(6));
        let mut w: Vec<u32> = (0..50).collect();
        w.shuffle(&mut StdRng::seed_from_u64(6));
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*xs.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn forwarding_through_mut_ref() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            let r = rng; // &mut R implements RngCore
            r.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(8);
        let _ = takes_generic(&mut rng);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
