//! Test-case execution support: configuration, failure values, and the
//! deterministic per-case RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The input was rejected (filters); not a property violation.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl From<String> for TestCaseError {
    fn from(reason: String) -> Self {
        TestCaseError::Fail(reason)
    }
}

/// Per-block configuration, accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            // The real crate defaults to 256; 64 keeps the repo's heavier
            // whole-pipeline properties fast on small CI machines while
            // still exercising a meaningful input spread. Override with
            // PROPTEST_CASES, exactly like upstream.
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor fixing the case count.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// The case count to run: `PROPTEST_CASES` from the environment, else the
/// configured value.
pub fn resolved_cases(config: &ProptestConfig) -> u64 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(u64::from(config.cases)),
        Err(_) => u64::from(config.cases),
    }
}

/// Deterministic RNG for one test case, keyed by the test's identity and
/// the case index. Stable across runs so failures are reproducible.
pub fn case_rng(test_label: &str, case: u64) -> StdRng {
    // FNV-1a over the label...
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    // ...mixed with the case index (SplitMix64 finalizer).
    let mut z = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}
