//! Value-generation strategies.

use rand::{Rng, RngCore};

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of an RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, retrying with fresh
    /// randomness. `whence` names the filter in the panic raised if the
    /// filter rejects too many consecutive candidates.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

/// Give up after this many consecutive rejections — the filter is then
/// effectively unsatisfiable and silently looping would hang the test.
const MAX_FILTER_RETRIES: usize = 10_000;

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected {MAX_FILTER_RETRIES} consecutive candidates",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, _rng: &mut R) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                (&mut *rng).gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                (&mut *rng).gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (*rng).gen::<bool>()
    }
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                (&mut *rng).gen::<$ty>()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform over `[0, 1)` — a pragmatic default for this workspace's
    /// numeric properties (the real crate generates edge-case floats).
    fn arbitrary<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (*rng).gen::<f64>()
    }
}

/// The canonical strategy for `T`, e.g. `any::<bool>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::arbitrary(rng)
    }
}
