//! Offline vendored stand-in for the parts of `proptest` 1.x this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! compiles this drop-in instead of the real crate. It covers the API
//! subset the repo's property tests call:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0u32..16`, `0.0f64..=1.0`, …), tuple strategies,
//!   [`prelude::any`], [`collection::vec`],
//!   [`Strategy::prop_map`] and [`Strategy::prop_filter`],
//! * [`test_runner::TestCaseError`] and
//!   [`test_runner::ProptestConfig`] (the `cases` field).
//!
//! Semantics: each test runs `cases` deterministic cases (seeded from the
//! test's module path and the case index, so failures are reproducible).
//! **No shrinking** is performed — a failing case reports its case index
//! and panics. That loses minimization but preserves the contract the
//! repo's tests rely on: properties hold over many generated inputs.
//! `PROPTEST_CASES` in the environment overrides the case count, like the
//! real crate.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy;

pub mod test_runner;

pub mod collection {
    //! Strategies for collections (`vec`).

    use crate::strategy::Strategy;
    use rand::RngCore;

    /// Size specification for [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate<R: RngCore + ?Sized>(&self, rng: &mut R) -> Self::Value {
            use rand::Rng;
            let len = (*rng).gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// aborting the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`.
///
/// Accepts an optional `#![proptest_config(expr)]` header applying to every
/// test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = $crate::test_runner::resolved_cases(&config);
                for case in 0..cases {
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n\
                             (cases are deterministic; rerun reproduces this failure)",
                            stringify!($name),
                            case,
                            cases,
                            err,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -1.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pairs in crate::collection::vec((0u8..4, any::<bool>()), 0..20)) {
            prop_assert!(pairs.len() < 20);
            for (v, _flag) in pairs {
                prop_assert!(v < 4);
            }
        }

        #[test]
        fn map_and_filter(n in (0usize..100).prop_map(|x| x * 2)
                                 .prop_filter("nonzero", |&x| x != 0)) {
            prop_assert!(n % 2 == 0);
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_header_accepted(x in 0u64..9) {
            prop_assert!(x < 9);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|case| {
                use rand::Rng;
                let mut rng = crate::test_runner::case_rng("fixed-label", case);
                rng.gen::<u64>()
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| {
                use rand::Rng;
                let mut rng = crate::test_runner::case_rng("fixed-label", case);
                rng.gen::<u64>()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed at case 0")]
    fn failures_panic_with_case_index() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    proptest! {
        #[test]
        fn just_yields_constant(v in Just(41usize)) {
            prop_assert_eq!(v, 41);
        }
    }
}
